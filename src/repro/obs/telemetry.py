"""Cross-process telemetry: a schema-versioned live event stream.

The metrics registry (:mod:`repro.obs.metrics`) answers "what happened
in this process"; this module answers "what is happening across the
whole fleet, right now".  Every observable moment — a metric delta, a
span, a fault injection, a quarantine transition, a job lifecycle edge,
a log-like annotation — becomes one JSON line in a telemetry event
stream that survives the process fan-out:

* line 1 — ``{"type": "meta", "format": "uniloc_telemetry",
  "version": 1, "run_id": ..., "experiment": ...}`` (the shared
  :mod:`repro.formats` header).
* every other line — ``{"type": "event", "kind": ..., "name": ...,
  "seq": ..., "time_s": ..., "run_id": ..., "job_id": ...,
  "worker_id": ..., "walk_seed": ..., "data": {...}}``.

The correlation IDs are the point: every event carries the ``run_id``
of the whole invocation, the ``job_id``/``walk_seed`` of the walk it
belongs to, and the ``worker_id`` of the process that emitted it, so a
city-scale run can be sliced per walk, per worker, or per scheme after
the fact — or while it is still running.

Cross-process flow
------------------

Fleet workers append events to per-worker **spool files** (one file per
worker pid, next to the run log in ``<log>.spool/``).  The parent's
:class:`TelemetrySession` *tails* those spools between future
completions — :meth:`TelemetrySession.drain` reads only complete new
lines (byte offsets per spool, partial lines wait for the next drain) —
and merges them into the single run log while folding metric-delta
events into the caller's registry via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so the
merged registry is *exactly* what the old end-of-run snapshot path
produced.  Timestamps come from the injectable
:mod:`repro.obs.clock`, and nothing here touches a seed or a cache
key, keeping the DET002 determinism contract intact.

``kind="metric"`` events mirror the registry snapshot format
(``instrument`` + ``value``/``values``) and are applied through
:func:`apply_metric_event`, which delegates to ``merge_snapshot`` so
streamed and snapshotted metrics can never diverge semantically.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Iterable, Iterator, Protocol

from repro.formats import UnsupportedFormatError, check_header, format_header
from repro.obs.clock import now_s
from repro.obs.metrics import Counter, MetricsRegistry

#: Artifact format tag / newest readable version for telemetry logs.
TELEMETRY_FORMAT = "uniloc_telemetry"
TELEMETRY_VERSION = 1

#: The event taxonomy.  ``metric`` lines are registry deltas; ``span``
#: lines are timed operations; ``fault``/``quarantine`` lines are the
#: degradation lifecycle; ``job`` lines are walk lifecycle edges;
#: ``log`` lines are free-form annotations.
EVENT_KINDS = ("metric", "span", "fault", "quarantine", "job", "log")


@dataclass(frozen=True)
class EventContext:
    """The correlation IDs stamped onto every event from one source.

    Attributes:
        run_id: identifies the whole CLI/engine invocation.
        job_id: identifies one walk job within the run (``""`` for
            run-scoped events).
        worker_id: identifies the emitting process (``"main"`` for the
            parent, ``"worker-<pid>"`` in the pool).
        walk_seed: the job's walk seed, when the event belongs to a walk.
    """

    run_id: str
    job_id: str = ""
    worker_id: str = "main"
    walk_seed: int | None = None


def new_run_id() -> str:
    """Return a fresh run ID (wall-clock ms + pid).

    Reads the injectable clock, so a frozen ``clock.override`` makes
    run IDs reproducible in tests.
    """
    return f"run-{int(now_s() * 1e3)}-{os.getpid()}"


def make_event(
    kind: str,
    name: str,
    context: EventContext,
    seq: int = 0,
    time_s: float | None = None,
    data: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build one schema-v1 event dict (validated kind, stamped IDs).

    Raises:
        ValueError: on a kind outside :data:`EVENT_KINDS`.
    """
    if kind not in EVENT_KINDS:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
        )
    event: dict[str, Any] = {
        "type": "event",
        "kind": kind,
        "name": name,
        "seq": seq,
        "time_s": now_s() if time_s is None else time_s,
        "run_id": context.run_id,
        "job_id": context.job_id,
        "worker_id": context.worker_id,
        "walk_seed": context.walk_seed,
    }
    if data:
        event["data"] = data
    return event


class EventSinkLike(Protocol):
    """Structural type of anything accepted as a ``telemetry=`` sink.

    Mirrors :class:`repro.obs.tracing.TracerLike`: instrumented code
    guards on ``enabled`` so the disabled hot path costs one attribute
    lookup, and tests can substitute any object with an ``emit``.
    """

    enabled: bool

    def emit(self, kind: str, name: str, **data: Any) -> None:
        """Record one event (possibly a no-op)."""
        ...


class NoopEmitter:
    """The disabled sink: ``emit`` drops everything on the floor."""

    enabled: bool = False

    def emit(self, kind: str, name: str, **data: Any) -> None:
        """Discard the event."""


#: The shared disabled sink; the default for every instrumented object.
NOOP_EMITTER = NoopEmitter()


class EventEmitter:
    """Context-stamping event source: one per (process, job) pair.

    Binds an :class:`EventContext` to a write callback (a spool file in
    a worker, the run log in the parent) and numbers events with a
    monotonically increasing ``seq`` so intra-source order survives the
    merge.
    """

    enabled: bool = True

    def __init__(
        self, write: Callable[[dict[str, Any]], None], context: EventContext
    ) -> None:
        self.context = context
        self._write = write
        self._seq = 0

    def emit(self, kind: str, name: str, **data: Any) -> None:
        """Build and write one event in this emitter's context."""
        event = make_event(kind, name, self.context, seq=self._seq, data=data)
        self._seq += 1
        self._write(event)

    def emit_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Stream a registry snapshot as one metric-delta event per name.

        The event payload mirrors the snapshot spec exactly, so
        :func:`apply_metric_event` can fold it back losslessly.
        """
        for name, spec in sorted(snapshot.items()):
            if spec["kind"] == "histogram":
                self.emit(
                    "metric", name,
                    instrument="histogram", values=list(spec["values"]),
                )
            else:
                self.emit(
                    "metric", name,
                    instrument=spec["kind"], value=spec["value"],
                )


def apply_metric_event(registry: MetricsRegistry, event: dict[str, Any]) -> None:
    """Fold one ``kind="metric"`` event into a registry.

    Delegates to :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`
    so streamed metrics obey exactly the snapshot-merge semantics
    (counters add, histogram values concatenate, gauges last-write-win).

    Raises:
        ValueError: if the event is not a well-formed metric event.
    """
    data = event.get("data", {})
    instrument = data.get("instrument")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"metric event without a name: {event!r}")
    if instrument == "histogram":
        spec: dict[str, Any] = {
            "kind": "histogram", "values": data.get("values", []),
        }
    elif instrument in ("counter", "gauge"):
        spec = {"kind": instrument, "value": data.get("value", 0)}
    else:
        raise ValueError(
            f"metric event {name!r} has unknown instrument {instrument!r}"
        )
    registry.merge_snapshot({name: spec})


def registry_from_events(events: Iterable[dict[str, Any]]) -> MetricsRegistry:
    """Rebuild the merged registry from a stream's metric events."""
    registry = MetricsRegistry()
    for event in events:
        if event.get("type") == "event" and event.get("kind") == "metric":
            apply_metric_event(registry, event)
    return registry


# ---------------------------------------------------------------------------
# Writers: the merged run log and the per-worker spool files.
# ---------------------------------------------------------------------------


class TelemetryWriter:
    """Appends events to the single merged run log (meta line first).

    Every line is flushed immediately so ``repro telemetry tail
    --follow`` can watch a run that is still going.
    """

    def __init__(
        self, path: str | Path, run_id: str = "", experiment: str = ""
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.n_events = 0
        self._fh: IO[str] | None = self.path.open("w")
        self._fh.write(
            json.dumps(
                {
                    "type": "meta",
                    **format_header(TELEMETRY_FORMAT, TELEMETRY_VERSION),
                    "run_id": run_id,
                    "experiment": experiment,
                },
                sort_keys=True,
            )
            + "\n"
        )
        self._fh.flush()

    def write_event(self, event: dict[str, Any]) -> None:
        """Append one event line (flushed).

        Raises:
            ValueError: if the writer was already closed.
        """
        if self._fh is None:
            raise ValueError(f"telemetry writer for {self.path} is closed")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        self.n_events += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> TelemetryWriter:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass(frozen=True)
class WorkerTelemetry:
    """The pickle-safe spec a worker needs to join a telemetry session.

    A frozen pure value (like :class:`~repro.fleet.executor.WalkJob`):
    it crosses the process boundary on the submit call and tells the
    worker where to spool and which IDs to stamp.
    """

    spool_root: str
    run_id: str
    job_id: str
    walk_seed: int | None = None


class TelemetrySpool:
    """Worker-side append-only event sink (one file per worker process).

    Each event line is flushed so the parent's tail sees it promptly;
    each worker writes only its own pid-named file, so no cross-process
    write interleaving can corrupt a line.
    """

    def __init__(self, spool_root: str | Path) -> None:
        self.worker_id = f"worker-{os.getpid()}"
        root = Path(spool_root)
        root.mkdir(parents=True, exist_ok=True)
        self.path = root / f"{self.worker_id}.jsonl"
        self._fh: IO[str] | None = self.path.open("a")

    def write_event(self, event: dict[str, Any]) -> None:
        """Append one event line (flushed).

        Raises:
            ValueError: if the spool was already closed.
        """
        if self._fh is None:
            raise ValueError(f"telemetry spool {self.path} is closed")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def emitter(self, spec: WorkerTelemetry) -> EventEmitter:
        """Return an emitter stamping this worker's IDs for one job."""
        context = EventContext(
            run_id=spec.run_id,
            job_id=spec.job_id,
            worker_id=self.worker_id,
            walk_seed=spec.walk_seed,
        )
        return EventEmitter(self.write_event, context)

    def close(self) -> None:
        """Flush and close the spool file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TelemetrySession:
    """Parent-side pipeline: run log + spool tailing + live metric merge.

    One session per engine invocation.  The serial path emits straight
    into the run log via :meth:`emitter`; the pool path hands each
    worker a :class:`WorkerTelemetry` spec (:meth:`worker_spec`) and the
    parent calls :meth:`drain` between future completions to tail the
    spools, merge complete lines into the log, and fold metric events
    into the caller's registry — live, not at end of run.
    """

    def __init__(
        self,
        path: str | Path,
        run_id: str | None = None,
        experiment: str = "",
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id if run_id is not None else new_run_id()
        self.experiment = experiment
        self.writer = TelemetryWriter(
            self.path, run_id=self.run_id, experiment=experiment
        )
        self.spool_root = Path(f"{self.path}.spool")
        self.spool_root.mkdir(parents=True, exist_ok=True)
        self._offsets: dict[str, int] = {}
        self._closed = False

    @staticmethod
    def job_id(index: int) -> str:
        """Return the canonical job ID for a job-list index."""
        return f"job-{index:04d}"

    def emitter(
        self,
        job_id: str = "",
        worker_id: str = "main",
        walk_seed: int | None = None,
    ) -> EventEmitter:
        """Return an in-process emitter writing straight to the run log."""
        context = EventContext(
            run_id=self.run_id,
            job_id=job_id,
            worker_id=worker_id,
            walk_seed=walk_seed,
        )
        return EventEmitter(self.writer.write_event, context)

    def worker_spec(
        self, index: int, walk_seed: int | None = None
    ) -> WorkerTelemetry:
        """Return the pickle-safe spec for one pool-submitted job."""
        return WorkerTelemetry(
            spool_root=str(self.spool_root),
            run_id=self.run_id,
            job_id=self.job_id(index),
            walk_seed=walk_seed,
        )

    def drain(self, metrics: MetricsRegistry | None = None) -> int:
        """Tail every spool file and merge complete new lines.

        Reads from each spool's remembered byte offset; a partially
        written trailing line is left for the next drain.  Metric events
        are folded into ``metrics`` (when given) through
        :func:`apply_metric_event`.  Returns the number of events merged.
        """
        merged = 0
        if not self.spool_root.is_dir():
            return 0
        for spool_path in sorted(self.spool_root.glob("*.jsonl")):
            key = spool_path.name
            offset = self._offsets.get(key, 0)
            try:
                size = spool_path.stat().st_size
            except OSError:
                continue
            if size <= offset:
                continue
            with spool_path.open("rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[key] = offset + end + 1
            for line in chunk[: end + 1].splitlines():
                if not line.strip():
                    continue
                event = json.loads(line.decode("utf-8"))
                self.writer.write_event(event)
                if metrics is not None and event.get("kind") == "metric":
                    apply_metric_event(metrics, event)
                merged += 1
        return merged

    def close(self) -> None:
        """Final-drain the spools, remove them, close the log (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.drain()
        if self.spool_root.is_dir():
            for spool_path in self.spool_root.glob("*.jsonl"):
                spool_path.unlink(missing_ok=True)
            try:
                self.spool_root.rmdir()
            except OSError:
                pass  # a straggler wrote after the final drain; keep it
        self.writer.close()

    def __enter__(self) -> TelemetrySession:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- the process-wide current session ---------------------------------------

_SESSION: TelemetrySession | None = None


def current_session() -> TelemetrySession | None:
    """Return the process-wide telemetry session, if one is active.

    The fleet executor checks this (like :func:`repro.fleet.default_cache`)
    so experiments that call ``run_walks`` deep inside the registry
    stream telemetry without any parameter threading.
    """
    return _SESSION


def set_session(session: TelemetrySession | None) -> TelemetrySession | None:
    """Swap the process-wide session; returns the previous one."""
    global _SESSION
    previous = _SESSION
    _SESSION = session
    return previous


@contextmanager
def telemetry_session(
    path: str | Path, run_id: str | None = None, experiment: str = ""
) -> Iterator[TelemetrySession]:
    """Open a session, install it process-wide, close it on exit."""
    session = TelemetrySession(path, run_id=run_id, experiment=experiment)
    previous = set_session(session)
    try:
        yield session
    finally:
        set_session(previous)
        session.close()


# ---------------------------------------------------------------------------
# Readers: whole-file, streaming, and follow (tail -f).
# ---------------------------------------------------------------------------


def iter_telemetry(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every line of a telemetry log, meta line included.

    Raises:
        ValueError: if the first line is not a compatible meta line.
    """
    with Path(path).open() as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path} is empty, not a telemetry log")
        try:
            meta = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:1: not JSON ({exc.msg})") from exc
        if not isinstance(meta, dict) or meta.get("type") != "meta":
            raise UnsupportedFormatError(
                f"{path} does not start with a {TELEMETRY_FORMAT} meta line"
            )
        check_header(meta, TELEMETRY_FORMAT, TELEMETRY_VERSION, source=path)
        yield meta
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not JSON ({exc.msg})"
                ) from exc


def read_telemetry(
    path: str | Path,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a whole log; returns ``(meta, events)``.

    Raises:
        ValueError: on a missing/incompatible meta line.
    """
    stream = iter_telemetry(path)
    meta = next(stream)
    return meta, [e for e in stream if e.get("type") == "event"]


def follow_telemetry(
    path: str | Path,
    poll_s: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    max_idle_polls: int | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield events as they are appended (``tail -f`` for a run log).

    Polls the file for complete new lines every ``poll_s`` seconds; the
    meta line is validated and yielded first.  ``sleep`` is injectable
    so tests follow a live file with a scripted no-op clock, and
    ``max_idle_polls`` bounds how many consecutive empty polls to
    tolerate before returning (``None`` = follow forever).

    Raises:
        ValueError: when the file's first line is not a compatible meta.
    """
    target = Path(path)
    offset = 0
    header_checked = False
    idle = 0
    while True:
        size = target.stat().st_size if target.exists() else 0
        if size > offset:
            with target.open("rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
            end = chunk.rfind(b"\n")
            if end >= 0:
                idle = 0
                offset += end + 1
                for line in chunk[: end + 1].splitlines():
                    if not line.strip():
                        continue
                    event = json.loads(line.decode("utf-8"))
                    if not header_checked:
                        if (
                            not isinstance(event, dict)
                            or event.get("type") != "meta"
                        ):
                            raise UnsupportedFormatError(
                                f"{target} does not start with a "
                                f"{TELEMETRY_FORMAT} meta line"
                            )
                        check_header(
                            event, TELEMETRY_FORMAT, TELEMETRY_VERSION,
                            source=target,
                        )
                        header_checked = True
                    yield event
                continue
        idle += 1
        if max_idle_polls is not None and idle > max_idle_polls:
            return
        sleep(poll_s)


def format_event(event: dict[str, Any]) -> str:
    """Render one event as a single human-readable tail line."""
    if event.get("type") == "meta":
        return (
            f"# {event.get('format')} v{event.get('version')} "
            f"run={event.get('run_id')} experiment={event.get('experiment')}"
        )
    data = event.get("data", {})
    detail = " ".join(f"{k}={_compact(v)}" for k, v in sorted(data.items()))
    return (
        f"{event.get('time_s', 0.0):14.3f} "
        f"{event.get('worker_id', ''):12s} "
        f"{event.get('job_id', ''):9s} "
        f"{event.get('kind', '')}/{event.get('name', '')}"
        + (f"  {detail}" if detail else "")
    )


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, list):
        return f"[{len(value)} values]"
    return str(value)


# ---------------------------------------------------------------------------
# Rollups: summary and fault-timeline reconstruction.
# ---------------------------------------------------------------------------


@dataclass
class JobRollup:
    """Lifecycle state of one walk job, reconstructed from its events."""

    job_id: str
    worker_id: str = ""
    place: str = ""
    path: str = ""
    walk_seed: int | None = None
    steps: int = 0
    status: str = "running"


@dataclass
class TelemetrySummary:
    """Everything ``repro telemetry summary`` renders about one run."""

    run_id: str
    experiment: str
    n_events: int
    workers: list[str]
    jobs: dict[str, JobRollup]
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def scheme_rollup(self) -> dict[str, dict[str, int]]:
        """Return per-scheme selections/faults/quarantines/skips."""
        rollup: dict[str, dict[str, int]] = {}
        prefixes = (
            ("uniloc.selected.", "selected"),
            ("uniloc.quarantine.entered.", "quarantines"),
            ("uniloc.quarantine.skipped.", "skipped_steps"),
        )
        for name, instrument in self.registry:
            if not isinstance(instrument, Counter):
                continue
            for prefix, label in prefixes:
                if name.startswith(prefix):
                    scheme = name[len(prefix):]
                    rollup.setdefault(scheme, {})[label] = instrument.value
            if name.startswith("uniloc.faults."):
                rest = name[len("uniloc.faults."):]
                scheme, _, _kind = rest.partition(".")
                entry = rollup.setdefault(scheme, {})
                entry["faults"] = entry.get("faults", 0) + instrument.value
        return rollup

    def place_rollup(self) -> dict[str, dict[str, int]]:
        """Return per-place job and step counts."""
        rollup: dict[str, dict[str, int]] = {}
        for job in self.jobs.values():
            entry = rollup.setdefault(
                job.place or "(unknown)", {"jobs": 0, "steps": 0}
            )
            entry["jobs"] += 1
            entry["steps"] += job.steps
        return rollup


def summarize_telemetry(
    meta: dict[str, Any], events: list[dict[str, Any]]
) -> TelemetrySummary:
    """Aggregate one run's event stream (see :func:`read_telemetry`)."""
    registry = MetricsRegistry()
    jobs: dict[str, JobRollup] = {}
    workers: set[str] = set()
    for event in events:
        if event.get("type") != "event":
            continue
        worker_id = event.get("worker_id")
        if worker_id:
            workers.add(worker_id)
        kind = event.get("kind")
        if kind == "metric":
            apply_metric_event(registry, event)
        elif kind == "job":
            job_id = event.get("job_id", "")
            job = jobs.setdefault(job_id, JobRollup(job_id=job_id))
            job.worker_id = worker_id or job.worker_id
            job.walk_seed = event.get("walk_seed", job.walk_seed)
            data = event.get("data", {})
            name = event.get("name")
            if name == "started":
                job.place = data.get("place", job.place)
                job.path = data.get("path", job.path)
            elif name == "finished":
                job.status = "finished"
                job.steps = int(data.get("steps", job.steps))
            elif name == "error":
                job.status = "error"
    return TelemetrySummary(
        run_id=meta.get("run_id", ""),
        experiment=meta.get("experiment", ""),
        n_events=len(events),
        workers=sorted(workers),
        jobs=jobs,
        registry=registry,
    )


def render_telemetry_summary(summary: TelemetrySummary) -> str:
    """Render a run summary as a fixed-width report."""
    title = summary.experiment or "(unnamed run)"
    lines = [
        f"run: {summary.run_id} — {title}",
        f"{summary.n_events} events from "
        f"{len(summary.workers)} worker(s): "
        + (", ".join(summary.workers) or "(none)"),
    ]
    places = summary.place_rollup()
    if places:
        lines.append("")
        lines.append(f"{'place':18s} {'jobs':>6s} {'steps':>8s}")
        for place in sorted(places):
            entry = places[place]
            lines.append(
                f"{place:18s} {entry['jobs']:6d} {entry['steps']:8d}"
            )
    schemes = summary.scheme_rollup()
    if schemes:
        lines.append("")
        lines.append(
            f"{'scheme':10s} {'selected':>9s} {'faults':>7s} "
            f"{'quarantines':>12s} {'skipped':>8s}"
        )
        for scheme in sorted(schemes):
            entry = schemes[scheme]
            lines.append(
                f"{scheme:10s} {entry.get('selected', 0):9d} "
                f"{entry.get('faults', 0):7d} "
                f"{entry.get('quarantines', 0):12d} "
                f"{entry.get('skipped_steps', 0):8d}"
            )
    incomplete = [
        j.job_id for j in summary.jobs.values() if j.status != "finished"
    ]
    if incomplete:
        lines.append("")
        lines.append(
            f"{len(incomplete)} job(s) not finished: "
            + ", ".join(sorted(incomplete))
        )
    return "\n".join(lines)


def fault_timeline(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Reconstruct the degradation lifecycle from a run's event stream.

    Returns one record per ``fault``/``quarantine`` event —
    ``{"job_id", "step", "scheme", "event", "detail"}`` — ordered by
    job then step (emit order breaks ties), which is exactly the
    replayable chaos narrative: inject → contain → quarantine → probe →
    release.
    """
    timeline = []
    for event in events:
        if event.get("kind") not in ("fault", "quarantine"):
            continue
        data = event.get("data", {})
        timeline.append(
            {
                "job_id": event.get("job_id", ""),
                "step": data.get("step"),
                "scheme": data.get("scheme", ""),
                "event": event.get("name", ""),
                "detail": data.get("failure", data.get("fault_kind", "")),
            }
        )
    timeline.sort(
        key=lambda record: (
            record["job_id"],
            record["step"] if record["step"] is not None else -1,
        )
    )
    return timeline
