"""JSONL step-trace export: a replayable event stream of UniLoc decisions.

Every location-estimation step becomes one JSON line carrying the full
decision telemetry — predicted errors, confidences, BMA weights, tau,
the indoor flag, the selected scheme, the GPS power state, and the
per-scheme estimate latency.  A trace file is therefore a faithful
record of *why* UniLoc behaved the way it did on a walk, and
``repro report`` (see :mod:`repro.obs.report`) aggregates it back into
the paper's usage/latency/duty-cycle tables without re-running anything.

File layout (one JSON object per line):

* line 1 — ``{"type": "meta", "format": "uniloc_trace", "version": 1,
  "place": ..., "path": ...}``
* every other line — ``{"type": "step", "index": ..., "decision": ...}``
  plus optional ground-truth fields when the producer knows them
  (``scheme_errors``, ``uniloc1_error``, ``uniloc2_error``, ``oracle``).

Non-finite floats (an unavailable step's ``tau`` is NaN) are encoded as
``null`` so the stream stays strict JSON for non-Python consumers.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Iterator

from repro.formats import UnsupportedFormatError, check_header, format_header

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

TRACE_FORMAT = "uniloc_trace"
TRACE_VERSION = 1


def _finite(value: float | None) -> float | None:
    """Map non-finite floats to None (JSON has no NaN/Inf)."""
    if value is None or not math.isfinite(value):
        return None
    return float(value)


def _finite_map(values: dict[str, float]) -> dict[str, float | None]:
    return {name: _finite(v) for name, v in values.items()}


def decision_to_dict(decision: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.framework.StepDecision` to JSON-ready form.

    Scheme outputs are reduced to their point estimate and spread — the
    particle clouds and candidate lists are deliberately dropped (they
    are reproducible from the recorded sensor trace and would bloat the
    stream by orders of magnitude).
    """
    return {
        "outputs": {
            name: (
                None
                if out is None
                else {
                    "x": out.position.x,
                    "y": out.position.y,
                    "spread": _finite(out.spread),
                }
            )
            for name, out in decision.outputs.items()
        },
        "predicted_errors": _finite_map(decision.predicted_errors),
        "confidences": _finite_map(decision.confidences),
        "weights": _finite_map(decision.weights),
        "tau": _finite(decision.tau),
        "indoor": decision.indoor,
        "selected": decision.selected,
        "uniloc1": (
            None
            if decision.uniloc1_position is None
            else {"x": decision.uniloc1_position.x, "y": decision.uniloc1_position.y}
        ),
        "uniloc2": (
            None
            if decision.uniloc2_position is None
            else {"x": decision.uniloc2_position.x, "y": decision.uniloc2_position.y}
        ),
        "gps_enabled": decision.gps_enabled,
        "scheme_latency_ms": _finite_map(decision.scheme_latency_ms),
        "failures": dict(decision.failures),
        "quarantined": list(decision.quarantined),
    }


def decision_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a ``StepDecision`` from :func:`decision_to_dict` output.

    The reconstruction is lossy by design: each available scheme comes
    back as a point-estimate-only ``SchemeOutput`` (no particles, no
    candidates).  All selection telemetry round-trips exactly.
    """
    # Imported here so the obs layer stays import-light and cycle-free.
    from repro.core.framework import StepDecision
    from repro.geometry import Point
    from repro.schemes.base import SchemeOutput

    def _point(p: dict[str, float] | None) -> Point | None:
        return None if p is None else Point(p["x"], p["y"])

    def _floats(values: dict[str, float | None]) -> dict[str, float]:
        return {
            name: float("nan") if v is None else float(v)
            for name, v in values.items()
        }

    return StepDecision(
        outputs={
            name: (
                None
                if out is None
                else SchemeOutput(
                    position=Point(out["x"], out["y"]),
                    spread=float("nan") if out["spread"] is None else out["spread"],
                )
            )
            for name, out in data["outputs"].items()
        },
        predicted_errors=_floats(data["predicted_errors"]),
        confidences=_floats(data["confidences"]),
        weights=_floats(data["weights"]),
        tau=float("nan") if data["tau"] is None else float(data["tau"]),
        indoor=data["indoor"],
        selected=data["selected"],
        uniloc1_position=_point(data["uniloc1"]),
        uniloc2_position=_point(data["uniloc2"]),
        gps_enabled=data["gps_enabled"],
        scheme_latency_ms=_floats(data["scheme_latency_ms"]),
        # Absent in pre-fault-injection traces; default to a clean step.
        failures=dict(data.get("failures", {})),
        quarantined=tuple(data.get("quarantined", ())),
    )


class TraceWriter:
    """Streams step events to a JSONL file as a walk runs.

    Usage::

        with TraceWriter(path, place="daily", path_name="path1") as trace:
            decision = framework.step(snapshot)
            trace.write_step(decision, index=i, time_s=snapshot.time_s)

    With a ``metrics`` registry attached the writer meters its own I/O
    (``uniloc.trace.io.write_bytes`` / ``io.events`` counters and an
    ``io.write_ms`` latency histogram) and appends one trailing
    ``{"type": "metrics", ...}`` event on close so the registry's final
    state rides inside the trace file itself.  Readers that only want
    steps (:func:`read_trace`) skip it; the format version stays 1
    because trailing non-step events are additive.
    """

    def __init__(
        self,
        path: str | Path,
        place: str = "",
        path_name: str = "",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.path = Path(path)
        self.metrics = metrics
        self._fh: IO[str] | None = self.path.open("w")
        self.n_steps = 0
        self.write_event(
            {
                "type": "meta",
                **format_header(TRACE_FORMAT, TRACE_VERSION),
                "place": place,
                "path": path_name,
            }
        )

    def write_event(self, event: dict[str, Any]) -> None:
        """Append one raw event line.

        Raises:
            ValueError: if the writer was already closed.
        """
        if self._fh is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        line = json.dumps(event, sort_keys=True) + "\n"
        if self.metrics is None:
            self._fh.write(line)
            return
        with self.metrics.timer("uniloc.trace.io.write_ms"):
            self._fh.write(line)
        self.metrics.counter("uniloc.trace.io.write_bytes").inc(
            len(line.encode("utf-8"))
        )
        self.metrics.counter("uniloc.trace.io.events").inc()

    def write_step(
        self,
        decision: Any,
        *,
        index: int | None = None,
        time_s: float | None = None,
        environment: str | None = None,
        scheme_errors: dict[str, float] | None = None,
        uniloc1_error: float | None = None,
        uniloc2_error: float | None = None,
        oracle_scheme: str | None = None,
        oracle_error: float | None = None,
    ) -> None:
        """Append one step event; ground-truth fields are optional."""
        event: dict[str, Any] = {
            "type": "step",
            "index": self.n_steps if index is None else index,
            "decision": decision_to_dict(decision),
        }
        if time_s is not None:
            event["time_s"] = time_s
        if environment is not None:
            event["environment"] = environment
        if scheme_errors is not None:
            event["scheme_errors"] = _finite_map(scheme_errors)
        if uniloc1_error is not None:
            event["uniloc1_error"] = _finite(uniloc1_error)
        if uniloc2_error is not None:
            event["uniloc2_error"] = _finite(uniloc2_error)
        if oracle_scheme is not None:
            event["oracle"] = {"scheme": oracle_scheme, "error": _finite(oracle_error)}
        self.write_event(event)
        self.n_steps += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent).

        When metered, a final ``{"type": "metrics"}`` event is appended
        first so the trace carries its own registry state.
        """
        if self._fh is not None:
            if self.metrics is not None:
                self._fh.write(
                    json.dumps(
                        {"type": "metrics", "metrics": self.metrics.as_dict()},
                        sort_keys=True,
                    )
                    + "\n"
                )
            self._fh.close()
            self._fh = None

    def __enter__(self) -> TraceWriter:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def iter_trace(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every event in a JSONL trace, meta line included.

    Raises:
        ValueError: if the first line is not a compatible meta event.
    """
    with Path(path).open() as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path} is empty, not a trace")
        try:
            meta = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:1: not JSON ({exc.msg})") from exc
        if not isinstance(meta, dict) or meta.get("type") != "meta":
            raise UnsupportedFormatError(
                f"{path} does not start with a {TRACE_FORMAT} meta line"
            )
        check_header(meta, TRACE_FORMAT, TRACE_VERSION, source=path)
        yield meta
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc.msg})") from exc


def read_trace(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a whole trace; returns ``(meta, step_events)``.

    Raises:
        ValueError: on a missing/incompatible meta line.
    """
    events = iter_trace(path)
    meta = next(events)
    return meta, [e for e in events if e.get("type") == "step"]
