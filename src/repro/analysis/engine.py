"""The repo-specific static-analysis engine behind ``repro lint``.

The repo's correctness story rests on invariants no off-the-shelf
linter checks: every RNG is explicitly seeded, no wall-clock value
leaks into a simulation or cache-key path, everything crossing the
``ProcessPoolExecutor`` boundary is a frozen pure value, and every
metric/span name fits the observability grammar and is actually
emitted somewhere.  This engine polices those invariants at review
time — as plain AST rules over ``src/`` and ``tests/`` — instead of
via flaky bisects after a figure stops reproducing.

Architecture:

* :class:`Rule` — the plugin protocol.  A rule inspects one parsed
  :class:`SourceFile` at a time (``check``) and may additionally
  cross-check per-file *facts* over the whole tree (``cross_check``),
  which is how the observability rule proves a counter read somewhere
  is emitted somewhere else.
* :class:`LintEngine` — file discovery, per-file result caching keyed
  on content hash (the cache artifact carries the shared
  :mod:`repro.formats` header, like every other on-disk artifact in
  the repo), baseline subtraction, and inline ``lint: ignore[RULE]``
  suppression.
* :class:`LintReport` — the scored result, renderable as a fixed-width
  human table or the ``--json`` machine format.

Exit semantics mirror the CLI contract: error-tier findings fail the
build, warn-tier findings inform.  Directories named ``fixtures`` are
skipped during discovery so the test suite can keep known-bad snippets
on disk without tripping the whole-tree gate.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.formats import UnsupportedFormatError, check_header, format_header

#: Bump to invalidate every cached lint result at once.
ANALYSIS_VERSION = 1

CACHE_FORMAT = "lint_cache"
BASELINE_FORMAT = "lint_baseline"
REPORT_FORMAT = "lint_report"

#: Directory names never descended into during discovery.  ``fixtures``
#: is deliberate: the analyzer's own test fixtures are known-bad
#: snippets that must not fail the whole-tree gate.
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        ".git",
        ".hg",
        ".mypy_cache",
        ".pytest_cache",
        ".repro-cache",
        ".ruff_cache",
        ".venv",
        "build",
        "dist",
        "fixtures",
        "node_modules",
        "venv",
    }
)

#: Inline suppression marker: ``# lint: ignore[DET001]`` on the flagged
#: line silences that rule for that line (comma-separate several IDs).
IGNORE_MARKER = "lint: ignore["

TIERS = ("error", "warn")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    tier: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Return the stable id baselines suppress this finding by.

        Deliberately excludes the line/column so reformatting a file
        does not churn the baseline; a moved violation is still the
        same violation.
        """
        raw = f"{self.rule}\x00{self.path}\x00{self.message}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """Return the one-line human rendering."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.tier}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the ``--json`` report and the result cache."""
        return {
            "rule": self.rule,
            "tier": self.tier,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Rebuild a finding from its serialized form."""
        return cls(
            rule=data["rule"],
            tier=data["tier"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
        )


class SourceFile:
    """One parsed file plus the path-derived scopes the rules key on."""

    def __init__(
        self, display: str, text: str, in_src: bool | None = None
    ) -> None:
        self.display = display
        self.text = text
        self.lines = text.splitlines()
        #: True for production code under ``src/repro`` — the scope in
        #: which the determinism/purity/observability invariants are
        #: enforced.  Tests may freely use ad-hoc metric names and
        #: measure wall time.
        self.in_src = (
            in_src
            if in_src is not None
            else ("src/repro/" in display or display.startswith("repro/"))
        )
        self.tree: ast.AST = ast.parse(text)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @classmethod
    def load(cls, path: Path, display: str) -> "SourceFile":
        """Read and parse one file from disk."""
        return cls(display, path.read_text())

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """Return a node's syntactic parent (map built on first use)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def ignored_rules(self, line: int) -> frozenset[str]:
        """Return the rule IDs suppressed inline on ``line`` (1-based)."""
        if not 1 <= line <= len(self.lines):
            return frozenset()
        text = self.lines[line - 1]
        start = text.find(IGNORE_MARKER)
        if start < 0:
            return frozenset()
        end = text.find("]", start)
        if end < 0:
            return frozenset()
        inner = text[start + len(IGNORE_MARKER) : end]
        return frozenset(part.strip() for part in inner.split(",") if part.strip())


class Rule:
    """The plugin protocol every analyzer rule implements.

    Subclasses set the class attributes and override :meth:`check`;
    rules that reason across files additionally override
    :meth:`cross_check`, consuming the JSON-serializable facts their
    ``check`` returned per file (facts survive the result cache, so a
    cached file still participates in cross-checking).
    """

    id: str = "RULE000"
    tier: str = "error"
    title: str = ""
    #: Bump when the rule's logic changes, to invalidate cached results.
    version: int = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        """Inspect one file; return ``(findings, facts-or-None)``."""
        raise NotImplementedError

    def cross_check(self, facts: list[tuple[str, Any]]) -> list[Finding]:
        """Inspect all files' facts; return whole-tree findings."""
        return []

    def finding(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            rule=self.id,
            tier=self.tier,
            path=file.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _rule_source_hash(rule: Rule) -> str:
    """Hash a rule's implementation source, falling back to its version.

    The manual ``version`` attribute only invalidates the cache when an
    author remembers to bump it; hashing the rule class's actual source
    (via :mod:`inspect`) makes every logic edit a cache miss.  Rules
    whose source is unavailable (REPL-defined, C extensions) degrade to
    the declared version — no worse than the old behavior.
    """
    try:
        source = inspect.getsource(type(rule))
    except (OSError, TypeError):
        return f"v{rule.version}"
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def rules_fingerprint(rules: Sequence[Rule]) -> str:
    """Hash the engine + rule identities; keys the per-file result cache.

    The fingerprint folds in each rule's id, declared version, *and* a
    hash of its class source, so editing a rule's logic (with or
    without a version bump) invalidates previously cached results.
    """
    spec = {
        "analysis_version": ANALYSIS_VERSION,
        "rules": sorted(
            (rule.id, rule.version, _rule_source_hash(rule)) for rule in rules
        ),
    }
    raw = json.dumps(spec, sort_keys=True)
    return hashlib.sha256(raw.encode()).hexdigest()[:12]


@dataclass
class LintReport:
    """The scored outcome of one lint run."""

    findings: list[Finding]
    n_files: int = 0
    n_cached: int = 0
    n_suppressed_inline: int = 0
    n_suppressed_baseline: int = 0

    @property
    def n_errors(self) -> int:
        """Return the number of error-tier findings."""
        return sum(1 for f in self.findings if f.tier == "error")

    @property
    def n_warnings(self) -> int:
        """Return the number of warn-tier findings."""
        return sum(1 for f in self.findings if f.tier == "warn")

    def counts_by_rule(self) -> dict[str, int]:
        """Return ``{rule id: finding count}``, sorted by rule id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        """Serialize as the ``--json`` machine format."""
        return {
            **format_header(REPORT_FORMAT, ANALYSIS_VERSION),
            "counts": {
                "errors": self.n_errors,
                "warnings": self.n_warnings,
                "files": self.n_files,
                "cached_files": self.n_cached,
                "suppressed_inline": self.n_suppressed_inline,
                "suppressed_baseline": self.n_suppressed_baseline,
                "by_rule": self.counts_by_rule(),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Render the human-readable report."""
        lines = [f.describe() for f in self.findings]
        if lines:
            lines.append("")
        suppressed = ""
        if self.n_suppressed_inline or self.n_suppressed_baseline:
            suppressed = (
                f" ({self.n_suppressed_inline} inline-ignored, "
                f"{self.n_suppressed_baseline} baselined)"
            )
        lines.append(
            f"{self.n_errors} error(s), {self.n_warnings} warning(s) "
            f"across {self.n_files} file(s), {self.n_cached} cached"
            f"{suppressed}"
        )
        return "\n".join(lines)


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: when a named path does not exist.
    """
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in EXCLUDED_DIR_NAMES
            )
            for name in filenames:
                if name.endswith(".py"):
                    found.add(Path(dirpath) / name)
    return sorted(found)


def display_path(path: Path) -> str:
    """Return the normalized (posix, cwd-relative when possible) path."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def load_baseline(path: str | Path) -> frozenset[str]:
    """Read a baseline file; return the suppressed fingerprints.

    Raises:
        UnsupportedFormatError: on a wrong format tag or future version.
        OSError: when the file cannot be read.
    """
    payload = json.loads(Path(path).read_text())
    check_header(payload, BASELINE_FORMAT, ANALYSIS_VERSION, source=path)
    return frozenset(payload.get("suppressed", []))


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write the findings' fingerprints as a baseline; return the count."""
    fingerprints = sorted({f.fingerprint() for f in findings})
    payload = {
        **format_header(BASELINE_FORMAT, ANALYSIS_VERSION),
        "suppressed": fingerprints,
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(fingerprints)


@dataclass
class _CacheEntry:
    """One file's cached lint outcome (verbatim findings + rule facts)."""

    sha: str
    findings: list[Finding]
    facts: dict[str, Any] = field(default_factory=dict)


class LintEngine:
    """Run a rule set over files, with caching and baseline subtraction.

    Args:
        rules: rule instances to run (defaults to the full registry).
        cache_path: JSON file for per-file result caching; ``None``
            disables persistence (every file is re-analyzed).
        baseline: fingerprints to suppress (see :func:`load_baseline`).
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        cache_path: str | Path | None = None,
        baseline: frozenset[str] = frozenset(),
    ) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.baseline = baseline
        self._fingerprint = rules_fingerprint(self.rules)

    # -- caching -----------------------------------------------------------

    def _load_cache(self) -> dict[str, _CacheEntry]:
        if self.cache_path is None or not self.cache_path.exists():
            return {}
        try:
            payload = json.loads(self.cache_path.read_text())
            check_header(
                payload, CACHE_FORMAT, ANALYSIS_VERSION, source=self.cache_path
            )
        except (OSError, ValueError):
            return {}  # any unreadable/foreign cache is simply cold
        if payload.get("rules") != self._fingerprint:
            return {}
        entries: dict[str, _CacheEntry] = {}
        for display, spec in payload.get("files", {}).items():
            entries[display] = _CacheEntry(
                sha=spec["sha"],
                findings=[Finding.from_dict(f) for f in spec["findings"]],
                facts=spec.get("facts", {}),
            )
        return entries

    def _save_cache(self, entries: dict[str, _CacheEntry]) -> None:
        if self.cache_path is None:
            return
        payload = {
            **format_header(CACHE_FORMAT, ANALYSIS_VERSION),
            "rules": self._fingerprint,
            "files": {
                display: {
                    "sha": entry.sha,
                    "findings": [f.to_dict() for f in entry.findings],
                    "facts": entry.facts,
                }
                for display, entry in sorted(entries.items())
            },
        }
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.cache_path.with_name(
            self.cache_path.name + f".tmp{os.getpid()}"
        )
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.cache_path)

    # -- the run -----------------------------------------------------------

    def _check_file(self, file: SourceFile) -> _CacheEntry:
        """Run every rule's per-file pass over one parsed file."""
        findings: list[Finding] = []
        facts: dict[str, Any] = {}
        for rule in self.rules:
            rule_findings, rule_facts = rule.check(file)
            findings.extend(rule_findings)
            if rule_facts is not None:
                facts[rule.id] = rule_facts
        sha = hashlib.sha256(file.text.encode()).hexdigest()
        return _CacheEntry(sha=sha, findings=findings, facts=facts)

    def lint_paths(self, paths: Iterable[str | Path]) -> LintReport:
        """Discover, analyze, cross-check, and score the given paths."""
        files = discover_files(paths)
        cache = self._load_cache()
        report = LintReport(findings=[], n_files=len(files))
        fresh: dict[str, _CacheEntry] = {}
        raw_findings: list[Finding] = []
        all_facts: dict[str, list[tuple[str, Any]]] = {
            rule.id: [] for rule in self.rules
        }
        sources: dict[str, SourceFile] = {}

        for path in files:
            display = display_path(path)
            text = path.read_text()
            sha = hashlib.sha256(text.encode()).hexdigest()
            cached = cache.get(display)
            if cached is not None and cached.sha == sha:
                entry = cached
                report.n_cached += 1
            else:
                try:
                    source = SourceFile(display, text)
                except SyntaxError as exc:
                    raw_findings.append(
                        Finding(
                            rule="PARSE",
                            tier="error",
                            path=display,
                            line=exc.lineno or 1,
                            col=(exc.offset or 0) + 1,
                            message=f"cannot parse: {exc.msg}",
                        )
                    )
                    continue
                sources[display] = source
                entry = self._check_file(source)
            fresh[display] = entry
            raw_findings.extend(entry.findings)
            for rule_id, facts in entry.facts.items():
                all_facts.setdefault(rule_id, []).append((display, facts))

        for rule in self.rules:
            raw_findings.extend(rule.cross_check(all_facts.get(rule.id, [])))

        self._save_cache(fresh)
        self._score(report, raw_findings, sources)
        return report

    def lint_text(
        self, text: str, display: str, in_src: bool | None = None
    ) -> list[Finding]:
        """Analyze one in-memory snippet (no cache, no baseline).

        Cross-file rules cross-check against this snippet alone, so a
        read of a metric the snippet never emits still surfaces — which
        is exactly what the rule fixtures exercise.
        """
        source = SourceFile(display, text, in_src=in_src)
        entry = self._check_file(source)
        findings = list(entry.findings)
        for rule in self.rules:
            if rule.id in entry.facts:
                findings.extend(
                    rule.cross_check([(display, entry.facts[rule.id])])
                )
        report = LintReport(findings=[], n_files=1)
        self._score(report, findings, {display: source})
        return report.findings

    def _score(
        self,
        report: LintReport,
        raw_findings: list[Finding],
        sources: dict[str, SourceFile],
    ) -> None:
        """Apply inline ignores + baseline, then sort into the report."""
        kept: list[Finding] = []
        for finding in raw_findings:
            source = sources.get(finding.path)
            if (
                source is not None
                and finding.rule in source.ignored_rules(finding.line)
            ):
                report.n_suppressed_inline += 1
                continue
            if finding.fingerprint() in self.baseline:
                report.n_suppressed_baseline += 1
                continue
            kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        report.findings = kept
