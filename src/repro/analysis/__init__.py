"""Repo-specific static analysis: the engine behind ``repro lint``.

Five invariants make this repro trustworthy — explicit seeding,
clock-free deterministic paths, pure process-boundary values, honest
metric names, and unit-suffixed quantities — and none of them is
checkable by ruff or mypy.  This package checks them: a plugin rule
protocol, an AST runner with content-hash result caching, a baseline
mechanism for grandfathering, and both human and JSON reporting.  See
README's "Static analysis" section for the workflow and DESIGN.md for
the module map.
"""

from repro.analysis.engine import (
    ANALYSIS_VERSION,
    Finding,
    LintEngine,
    LintReport,
    Rule,
    SourceFile,
    discover_files,
    load_baseline,
    rules_fingerprint,
    write_baseline,
)
from repro.analysis.rules import default_rules

__all__ = [
    "ANALYSIS_VERSION",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "SourceFile",
    "default_rules",
    "discover_files",
    "load_baseline",
    "rules_fingerprint",
    "write_baseline",
]
