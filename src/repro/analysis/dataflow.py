"""Intraprocedural dataflow IR for the flow-sensitive lint rules.

The PR-4 rules are syntactic: they match one AST node at a time, so a
``default_rng(s)`` whose ``s`` was assigned three lines earlier from a
wall-clock read, or a lambda smuggled into a ``WalkJob`` through a
local, sails straight past them.  This module adds the missing layer —
a small, auditable def-use/alias IR — without growing a full SSA
compiler:

* :class:`Origin` — where a value ultimately comes from: a function
  parameter, a constant, a call result, an attribute chain rooted at a
  parameter, an imported name, a lambda/local function, or a mutable
  container literal.  Origins carry the source location of the
  expression that produced them so findings can point at the smuggle
  site, not just the sink.
* :class:`FunctionDataflow` — one function's def-use map.  It records
  every local assignment (including tuple packing/unpacking, loop
  targets, ``with ... as`` targets, and comprehension targets), each
  parameter's default, and locally-defined functions, then answers
  ``origins(expr)``: the set of ultimate origins an expression's value
  can have, resolved through local aliases with arithmetic, tuple
  packing, and f-strings treated as lineage-preserving.
* :class:`CallSite` / :class:`CallGraph` — the package-level call graph
  assembled from per-file facts (one :func:`function_calls` pass per
  file, canonicalized through :mod:`repro.analysis.names`), which is
  how a cross-file rule resolves a call in ``eval/registry.py`` to a
  contract declared in ``radio/kernels.py``.

The analysis is deliberately flow-*insensitive* within a function: a
name's origins are the union over every assignment to it, in any
branch.  That over-approximates reality (a value reassigned on one
branch contributes both origins) but never under-approximates it, which
is the right polarity for lint rules — the ``lint: ignore[...]`` escape
hatch covers the over-approximation, silence would hide real bugs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.analysis.names import canonical_call, canonicalize, dotted_name, import_bindings

#: The origin taxonomy.  ``attribute`` chains are rooted at a parameter
#: or module-level name (``job.fault_plan.seed``); ``container`` covers
#: mutable literals *and* comprehensions; ``function`` is a locally
#: ``def``-ed function (a closure hazard at pickle boundaries).
ORIGIN_KINDS = (
    "param",
    "const",
    "call",
    "attribute",
    "import",
    "global",
    "lambda",
    "function",
    "container",
    "unknown",
)

#: Builtin calls that preserve their arguments' lineage: the seed in
#: ``default_rng(int(seed))`` still derives from ``seed``.
_PASSTHROUGH_CALLS = frozenset(
    {"int", "float", "abs", "min", "max", "sum", "round", "tuple"}
)

#: Recursion ceiling for alias resolution; deeper chains resolve to
#: ``unknown`` rather than recursing without bound.
_MAX_DEPTH = 16


@dataclass(frozen=True)
class Origin:
    """One ultimate source of a value, with the site that produced it.

    Attributes:
        kind: one of :data:`ORIGIN_KINDS`.
        detail: the kind-specific payload — parameter name, canonical
            call target, dotted attribute chain, constant repr.
        line, col: 1-based line / 0-based column of the producing
            expression (0/0 when synthesized).
    """

    kind: str
    detail: str = ""
    line: int = 0
    col: int = 0

    def describe(self) -> str:
        """Return the compact human rendering used in rule messages."""
        return f"{self.kind}:{self.detail}" if self.detail else self.kind


def _origin(kind: str, detail: str, node: ast.AST) -> Origin:
    return Origin(
        kind=kind,
        detail=detail,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
    )


def _local_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Yield every statement in ``func``'s own scope, skipping nested defs.

    Nested functions and lambdas open their own scopes; their
    assignments must not pollute the enclosing function's def-use map.
    The nested ``def`` statement itself *is* yielded (it binds a local
    name), but its body is not descended into.
    """
    stack: list[ast.stmt] = list(getattr(func, "body", []))
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child_field in (
            "body",
            "orelse",
            "finalbody",
            "handlers",
            "cases",
        ):
            for child in getattr(statement, child_field, []):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif hasattr(child, "body"):  # match cases
                    stack.extend(getattr(child, "body", []))


def _pair_targets(
    target: ast.expr, value: ast.expr
) -> Iterator[tuple[str, ast.expr]]:
    """Yield ``(name, expr)`` pairs for one assignment target.

    Tuple targets against tuple values pair element-wise (``a, b = x,
    y``); a tuple target against anything else maps every name to the
    whole value (``a, b = f()`` — both are "some part of f()'s
    result"), which is the right lineage even though it is not the
    runtime value.
    """
    if isinstance(target, ast.Name):
        yield target.id, value
    elif isinstance(target, ast.Starred):
        yield from _pair_targets(target.value, value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
            target.elts
        ):
            for sub_target, sub_value in zip(target.elts, value.elts):
                yield from _pair_targets(sub_target, sub_value)
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "enumerate"
            and value.args
            and len(target.elts) == 2
        ):
            # ``for i, item in enumerate(xs)``: the index is the
            # enumerate call, the item is an element of ``xs``.
            yield from _pair_targets(target.elts[0], value)
            yield from _pair_targets(target.elts[1], value.args[0])
        else:
            for sub_target in target.elts:
                yield from _pair_targets(sub_target, value)
    # Attribute/Subscript targets define no local name; skip.


class FunctionDataflow:
    """The def-use/alias map of one function body.

    Args:
        func: the function's AST node.
        bindings: the module's import bindings (see
            :func:`repro.analysis.names.import_bindings`); used to
            canonicalize call targets during origin resolution.
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        bindings: Mapping[str, str],
    ) -> None:
        self.func = func
        self.bindings = dict(bindings)
        self.params: set[str] = set()
        self.defaults: dict[str, ast.expr] = {}
        self.assignments: dict[str, list[ast.expr]] = {}
        self.local_functions: set[str] = set()
        self._collect()

    # -- construction ------------------------------------------------------

    def _collect(self) -> None:
        args = self.func.args
        positional = list(args.posonlyargs) + list(args.args)
        for arg in positional + list(args.kwonlyargs):
            self.params.add(arg.arg)
        if args.vararg is not None:
            self.params.add(args.vararg.arg)
        if args.kwarg is not None:
            self.params.add(args.kwarg.arg)
        # Positional defaults are right-aligned onto the parameter list.
        for arg, default in zip(
            positional[len(positional) - len(args.defaults) :], args.defaults
        ):
            self.defaults[arg.arg] = default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                self.defaults[arg.arg] = kw_default

        for statement in _local_statements(self.func):
            self._collect_statement(statement)
        # Comprehension targets live in their own scope but carry useful
        # lineage: bind each to its iterable.
        for node in ast.walk(self.func):
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for comp in node.generators:
                    for name, value in _pair_targets(comp.target, comp.iter):
                        self.assignments.setdefault(name, []).append(value)

    def _collect_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                self._record(target, statement.value)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._record(statement.target, statement.value)
        elif isinstance(statement, ast.AugAssign):
            self._record(statement.target, statement.value)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._record(statement.target, statement.iter)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    self._record(item.optional_vars, item.context_expr)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_functions.add(statement.name)
        # NamedExpr (walrus) can hide anywhere in an expression.
        for node in ast.walk(statement):
            if isinstance(node, ast.NamedExpr):
                self._record(node.target, node.value)

    def _record(self, target: ast.expr, value: ast.expr) -> None:
        for name, expr in _pair_targets(target, value):
            self.assignments.setdefault(name, []).append(expr)

    # -- resolution --------------------------------------------------------

    def origins(self, node: ast.expr) -> frozenset[Origin]:
        """Return every ultimate origin the expression's value can have."""
        return self._origins(node, frozenset(), 0)

    def _origins(
        self, node: ast.expr, visiting: frozenset[str], depth: int
    ) -> frozenset[Origin]:
        if depth > _MAX_DEPTH:
            return frozenset({_origin("unknown", "", node)})
        if isinstance(node, ast.Name):
            return self._name_origins(node, visiting, depth)
        if isinstance(node, ast.Constant):
            return frozenset({_origin("const", repr(node.value), node)})
        if isinstance(node, ast.Attribute):
            return self._attribute_origins(node, visiting, depth)
        if isinstance(node, ast.Call):
            return self._call_origins(node, visiting, depth)
        if isinstance(node, ast.Lambda):
            return frozenset({_origin("lambda", "<lambda>", node)})
        if isinstance(node, (ast.List, ast.Set)):
            out = {_origin("container", type(node).__name__.lower(), node)}
            for element in node.elts:
                out |= self._origins(element, visiting, depth + 1)
            return frozenset(out)
        if isinstance(node, ast.Dict):
            out = {_origin("container", "dict", node)}
            for value in node.values:
                if value is not None:
                    out |= self._origins(value, visiting, depth + 1)
            return frozenset(out)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            kind = "container" if not isinstance(node, ast.GeneratorExp) else "call"
            out = {_origin(kind, type(node).__name__.lower(), node)}
            element = node.value if isinstance(node, ast.DictComp) else node.elt
            out |= self._origins(element, visiting, depth + 1)
            return frozenset(out)
        if isinstance(node, ast.Tuple):
            # Tuple literals are immutable packing: pure lineage.
            out: set[Origin] = set()
            for element in node.elts:
                out |= self._origins(element, visiting, depth + 1)
            return frozenset(out or {_origin("const", "()", node)})
        if isinstance(node, ast.BinOp):
            return self._origins(node.left, visiting, depth + 1) | self._origins(
                node.right, visiting, depth + 1
            )
        if isinstance(node, ast.UnaryOp):
            return self._origins(node.operand, visiting, depth + 1)
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self._origins(value, visiting, depth + 1)
            return frozenset(out)
        if isinstance(node, ast.Compare):
            out = self._origins(node.left, visiting, depth + 1)
            for comparator in node.comparators:
                out |= self._origins(comparator, visiting, depth + 1)
            return frozenset(out)
        if isinstance(node, ast.IfExp):
            return self._origins(node.body, visiting, depth + 1) | self._origins(
                node.orelse, visiting, depth + 1
            )
        if isinstance(node, ast.Starred):
            return self._origins(node.value, visiting, depth + 1)
        if isinstance(node, ast.Subscript):
            return self._origins(node.value, visiting, depth + 1)
        if isinstance(node, ast.JoinedStr):
            out = {_origin("const", "<fstring>", node)}
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._origins(value.value, visiting, depth + 1)
            return frozenset(out)
        if isinstance(node, ast.NamedExpr):
            return self._origins(node.value, visiting, depth + 1)
        return frozenset({_origin("unknown", "", node)})

    def _name_origins(
        self, node: ast.Name, visiting: frozenset[str], depth: int
    ) -> frozenset[Origin]:
        name = node.id
        if name in self.params:
            out = {_origin("param", name, node)}
            default = self.defaults.get(name)
            if default is not None:
                out |= self._origins(default, visiting, depth + 1)
            return frozenset(out)
        if name in self.local_functions:
            return frozenset({_origin("function", name, node)})
        if name in self.assignments:
            if name in visiting:
                # Cycle (x = x + n): this occurrence contributes nothing;
                # the other assignments to the name provide the base case.
                return frozenset()
            out = set()
            for value in self.assignments[name]:
                out |= self._origins(value, visiting | {name}, depth + 1)
            return frozenset(out or {_origin("unknown", name, node)})
        if name in self.bindings:
            return frozenset({_origin("import", self.bindings[name], node)})
        return frozenset({_origin("global", name, node)})

    def _attribute_origins(
        self, node: ast.Attribute, visiting: frozenset[str], depth: int
    ) -> frozenset[Origin]:
        dotted = dotted_name(node)
        if dotted is not None:
            head = dotted.partition(".")[0]
            if head in self.bindings and head not in self.params:
                return frozenset(
                    {_origin("import", canonicalize(dotted, self.bindings), node)}
                )
        out: set[Origin] = set()
        for base in self._origins(node.value, visiting, depth + 1):
            if base.kind in ("param", "attribute", "global", "import"):
                out.add(
                    Origin(
                        kind="attribute",
                        detail=f"{base.detail}.{node.attr}",
                        line=getattr(node, "lineno", base.line),
                        col=getattr(node, "col_offset", base.col),
                    )
                )
            else:
                out.add(base)
        return frozenset(out)

    def _call_origins(
        self, node: ast.Call, visiting: frozenset[str], depth: int
    ) -> frozenset[Origin]:
        canonical = canonical_call(node, self.bindings)
        if canonical in _PASSTHROUGH_CALLS:
            out: set[Origin] = set()
            for argument in node.args:
                out |= self._origins(argument, visiting, depth + 1)
            for keyword in node.keywords:
                out |= self._origins(keyword.value, visiting, depth + 1)
            return frozenset(out or {_origin("call", canonical or "", node)})
        detail = canonical or dotted_name(node.func) or "<call>"
        return frozenset({_origin("call", detail, node)})


# ---------------------------------------------------------------------------
# Module-level views: functions, globals, and the call graph.
# ---------------------------------------------------------------------------


def module_name(display: str) -> str:
    """Derive the dotted module name from a display path.

    ``src/repro/radio/kernels.py`` becomes ``repro.radio.kernels``;
    paths outside a recognizable package root fall back to the stem.
    """
    normalized = display.replace("\\", "/")
    for marker in ("src/", ""):
        prefix = f"{marker}repro/"
        at = normalized.find(prefix)
        if at >= 0:
            tail = normalized[at + len(marker) :]
            return tail[: -len(".py")].replace("/", ".") if tail.endswith(
                ".py"
            ) else tail.replace("/", ".")
    stem = normalized.rsplit("/", 1)[-1]
    return stem[: -len(".py")] if stem.endswith(".py") else stem


def module_functions(
    tree: ast.AST,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for every function, including methods.

    Methods are qualified as ``ClassName.method``; nested functions as
    ``outer.<locals>.inner`` are *not* yielded (their scope is private).
    """

    def visit(nodes: list[ast.stmt], prefix: str) -> Iterator[
        tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]
    ]:
        for statement in nodes:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{statement.name}", statement
            elif isinstance(statement, ast.ClassDef):
                yield from visit(statement.body, f"{prefix}{statement.name}.")

    yield from visit(list(getattr(tree, "body", [])), "")


def module_global_assigns(
    tree: ast.AST,
) -> Iterator[tuple[list[str], ast.expr]]:
    """Yield ``(names, value)`` for every module-level assignment."""
    for statement in getattr(tree, "body", []):
        if isinstance(statement, ast.Assign):
            names = [
                t.id for t in statement.targets if isinstance(t, ast.Name)
            ]
            if names:
                yield names, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            if isinstance(statement.target, ast.Name):
                yield [statement.target.id], statement.value


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee``.

    Attributes:
        caller: module-qualified qualname of the calling function
            (``repro.eval.registry._pooled``).
        callee: canonical dotted name of the target
            (``repro.fleet.executor.run_walks``).
        line, col: location of the call expression.
    """

    caller: str
    callee: str
    line: int
    col: int

    def to_dict(self) -> dict[str, object]:
        """Serialize for the engine's JSON fact cache."""
        return {
            "caller": self.caller,
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CallSite":
        """Rebuild a call site from its serialized form."""
        return cls(
            caller=str(data["caller"]),
            callee=str(data["callee"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
        )


def function_calls(tree: ast.AST, display: str) -> list[CallSite]:
    """Extract every resolvable call edge from one module.

    Only calls whose target canonicalizes to a dotted name are
    recorded; dynamic dispatch (``handlers[k]()``) has no static edge.
    Calls to names defined in the same module are qualified with the
    module name so cross-file consumers see one namespace.
    """
    bindings = import_bindings(tree)
    module = module_name(display)
    local_names = {qualname.split(".")[0] for qualname, _ in module_functions(tree)}
    sites: list[CallSite] = []
    for qualname, func in module_functions(tree):
        caller = f"{module}.{qualname}"
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head = dotted.partition(".")[0]
            if head in bindings:
                callee = canonicalize(dotted, bindings)
            elif head in local_names:
                callee = f"{module}.{dotted}"
            else:
                callee = dotted
            sites.append(
                CallSite(
                    caller=caller,
                    callee=callee,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
    return sites


class CallGraph:
    """The package-level call graph, assembled from per-file facts."""

    def __init__(self, sites: list[CallSite]) -> None:
        self.sites = list(sites)
        self._callees: dict[str, set[str]] = {}
        self._callers: dict[str, set[str]] = {}
        for site in self.sites:
            self._callees.setdefault(site.caller, set()).add(site.callee)
            self._callers.setdefault(site.callee, set()).add(site.caller)

    @classmethod
    def from_facts(
        cls, facts: list[tuple[str, list[dict[str, object]]]]
    ) -> "CallGraph":
        """Build the graph from each file's serialized call-site facts."""
        sites: list[CallSite] = []
        for _display, payload in facts:
            for entry in payload:
                sites.append(CallSite.from_dict(entry))
        return cls(sites)

    def callees(self, qualname: str) -> frozenset[str]:
        """Return every target ``qualname`` calls (empty when unknown)."""
        return frozenset(self._callees.get(qualname, frozenset()))

    def callers(self, qualname: str) -> frozenset[str]:
        """Return every function that calls ``qualname``."""
        return frozenset(self._callers.get(qualname, frozenset()))


__all__ = [
    "ORIGIN_KINDS",
    "Origin",
    "FunctionDataflow",
    "CallSite",
    "CallGraph",
    "function_calls",
    "module_functions",
    "module_global_assigns",
    "module_name",
]
