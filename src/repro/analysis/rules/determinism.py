"""DET001/DET002: the reproducibility invariants, as AST rules.

Every figure in the repro is a pure function of explicit seeds, and the
fleet engine promises byte-identical results for any worker count.  Two
things silently break that promise: a random draw whose seed came from
the OS (DET001), and a wall-clock read whose value leaks into computed
results or cache keys (DET002).  Both are trivially greppable in code
review and trivially missed — so they are rules.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.analysis.engine import Finding, Rule, SourceFile
from repro.analysis.names import canonicalize, dotted_name, import_bindings

#: ``numpy.random`` attributes that are *not* the legacy global-state
#: API: the explicit-generator constructors and seed containers.
_NP_EXPLICIT = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "Philox",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "SFC64",
    }
)


class UnseededRandomness(Rule):
    """DET001: every random draw must trace back to an explicit seed.

    Three shapes are flagged:

    * ``np.random.default_rng()`` **with no arguments** — seeds from OS
      entropy; flagged everywhere, tests included, because an unseeded
      test is a flaky test.
    * any call into the legacy ``numpy.random`` global-state API
      (``np.random.normal``, ``np.random.seed``, ...) — the shared
      stream makes results depend on call order across the whole
      process; flagged in ``src`` scope.
    * any call into the stdlib ``random`` module — same shared-stream
      problem; flagged in ``src`` scope.
    """

    id = "DET001"
    tier = "error"
    title = "unseeded or global-state randomness"
    version = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        bindings = import_bindings(file.tree)
        findings: list[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head = dotted.partition(".")[0]
            if head not in bindings:
                continue  # not an imported name; out of scope
            canonical = canonicalize(dotted, bindings)
            if canonical == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            file,
                            node,
                            "default_rng() without a seed draws from OS "
                            "entropy; pass an explicit seed (or seed tuple)",
                        )
                    )
                continue
            if not file.in_src:
                continue
            prefix, _, attr = canonical.rpartition(".")
            if prefix == "numpy.random" and attr not in _NP_EXPLICIT:
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"numpy.random.{attr} uses the process-global "
                        "random state; use an explicitly seeded "
                        "default_rng(...) generator",
                    )
                )
            elif canonical.startswith("random."):
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"stdlib {canonical} uses the process-global "
                        "random state; use an explicitly seeded "
                        "numpy default_rng(...) generator",
                    )
                )
        return findings, None


#: Canonical names whose return value is a clock read.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The only production modules allowed to touch the raw clock: the
#: injectable clock helper itself, and the obs timing primitives whose
#: entire purpose is latency measurement.  Everything else goes through
#: :mod:`repro.obs.clock` so tests can freeze time.  This list is part
#: of the rule (not the baseline file) because it is an architectural
#: statement, not a grandfathered violation — the shipped baseline
#: stays empty.
DET002_ALLOWED_MODULES = (
    "repro/obs/clock.py",
    "repro/obs/metrics.py",
    "repro/obs/tracing.py",
)


class WallClockRead(Rule):
    """DET002: no raw wall-clock reads outside the obs timer modules.

    A ``time.time()`` in a simulation, cache, or serialization path
    makes output depend on when it ran — the cache-age bug class this
    repo has already shipped once.  Production code reads time through
    :func:`repro.obs.clock.now_s` / ``monotonic_s`` (overridable in
    tests); both calls *and* bare references (``callback=time.time``)
    are flagged.  Tests are exempt (benchmarks legitimately measure
    wall time), as are the modules in :data:`DET002_ALLOWED_MODULES`.
    """

    id = "DET002"
    tier = "error"
    title = "raw wall-clock read in deterministic path"
    version = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src or file.display.endswith(DET002_ALLOWED_MODULES):
            return [], None
        bindings = import_bindings(file.tree)
        findings: list[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            parent = file.parent_of(node)
            if isinstance(parent, ast.Attribute):
                continue  # only report the full dotted chain once
            dotted = dotted_name(node)
            if dotted is None:
                continue
            head = dotted.partition(".")[0]
            if head not in bindings:
                continue
            canonical = canonicalize(dotted, bindings)
            if canonical not in _WALL_CLOCK:
                continue
            how = (
                "called"
                if isinstance(parent, ast.Call) and parent.func is node
                else "referenced"
            )
            findings.append(
                self.finding(
                    file,
                    node,
                    f"raw clock {canonical} {how} outside the obs timer "
                    "modules; use repro.obs.clock.now_s/monotonic_s so "
                    "tests can control time",
                )
            )
        return findings, None
