"""SHP001: symbolic shape contracts, checked by dataflow propagation.

The numeric kernels document their shapes (``(M, 2)`` transmitters,
``(N, M)`` surfaces) but nothing checks a call site against those
docs.  With :class:`repro.shapes.Shape` declarations on the kernel
signatures, this rule closes the loop in two passes:

* **per file** (``check``): for every function, seed a symbolic
  environment from its ``Shape``-annotated parameters and propagate
  dims forward through assignments — elementwise broadcasting,
  ``@``/matmul, indexing (``x[:, 0]``, ``x[:, None]``), ``reshape``,
  ``stack``/``column_stack``, axis reductions, and ``.T``.  A
  broadcast of two *known, unequal* dims or a matmul with mismatched
  inner dims is an error.  Every call whose target resolves into the
  ``repro`` namespace is also emitted as a fact — a serialized
  :class:`~repro.analysis.dataflow.CallSite` plus the inferred
  argument shapes.
* **cross file** (``cross_check``): the per-file facts are joined into
  a :class:`~repro.analysis.dataflow.CallGraph`; every call edge whose
  callee declares a contract gets its inferred argument shapes checked
  against the declaration, with contract symbols bound consistently
  across arguments.

Propagation is deliberately conservative: an unknown dim (``None``)
silences every downstream check, distinct *symbols* are only compared
inside one function's own contract namespace (where ``N`` and ``M``
declare independent axes), and cross-file checks flag only rank
mismatches, unequal literals, and one contract symbol bound to two
different literals.  The rule under-reports rather than cry wolf.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from repro.analysis.dataflow import CallGraph, CallSite, module_name
from repro.analysis.engine import Finding, Rule, SourceFile
from repro.analysis.names import canonicalize, dotted_name, import_bindings
from repro.shapes import parse_dims

#: numpy callables that return their first argument's shape unchanged.
_ELEMENTWISE_UNARY = frozenset(
    {
        "numpy.sin",
        "numpy.cos",
        "numpy.tan",
        "numpy.arcsin",
        "numpy.arccos",
        "numpy.arctan",
        "numpy.exp",
        "numpy.log",
        "numpy.log10",
        "numpy.log2",
        "numpy.sqrt",
        "numpy.abs",
        "numpy.absolute",
        "numpy.floor",
        "numpy.ceil",
        "numpy.sign",
        "numpy.negative",
        "numpy.clip",
        "numpy.asarray",
        "numpy.ascontiguousarray",
        "numpy.isfinite",
        "numpy.isnan",
        "numpy.square",
    }
)

#: numpy callables that broadcast all their array arguments.
_ELEMENTWISE_NARY = frozenset(
    {
        "numpy.hypot",
        "numpy.arctan2",
        "numpy.maximum",
        "numpy.minimum",
        "numpy.where",
        "numpy.add",
        "numpy.subtract",
        "numpy.multiply",
        "numpy.divide",
        "numpy.power",
        "numpy.fmod",
    }
)

#: Array-method names that preserve the receiver's shape.
_PASSTHROUGH_METHODS = frozenset({"astype", "copy", "clip", "round"})

#: Array-method names that reduce over an axis (or fully, without one).
_REDUCTION_METHODS = frozenset(
    {"sum", "mean", "min", "max", "prod", "std", "var", "any", "all"}
)


def _functions_with_class(
    tree: ast.AST,
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(enclosing class name or None, function)`` pairs.

    Only module-level functions and first-level methods are yielded;
    nested functions track their enclosing scope's environment and are
    out of scope for contract checking.
    """
    for statement in getattr(tree, "body", []):
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, statement
        elif isinstance(statement, ast.ClassDef):
            for inner in statement.body:
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield statement.name, inner


def _dims_to_json(shape: tuple[str | None, ...] | None) -> list[str | None] | None:
    return None if shape is None else list(shape)


def _dims_from_json(data: Any) -> tuple[str | None, ...] | None:
    if data is None:
        return None
    return tuple(None if d is None else str(d) for d in data)


def _render(shape: tuple[str | None, ...] | None) -> str:
    if shape is None:
        return "(?)"
    return "(" + ", ".join("?" if d is None else d for d in shape) + ")"


def _shape_specs(annotation: ast.expr | None) -> tuple[str, ...] | None:
    """Extract the ``Shape("...")`` dims from one annotation, if any.

    Handles both live ``Annotated[np.ndarray, Shape("(N, 2)")]`` AST
    and string annotations (``from __future__ import annotations``
    stringizes nothing at the AST level, but explicitly quoted
    annotations are re-parsed).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    for node in ast.walk(annotation):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None or callee.rpartition(".")[2] != "Shape":
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            spec = node.args[0].value
            if isinstance(spec, str):
                try:
                    return parse_dims(spec)
                except ValueError:
                    return None
    return None


def _is_full_slice(node: ast.Slice) -> bool:
    """Return True for a bare ``:`` slice (axis length preserved)."""
    return node.lower is None and node.upper is None and node.step is None


def _broadcast(
    left: tuple[str | None, ...] | None,
    right: tuple[str | None, ...] | None,
) -> tuple[tuple[str | None, ...] | None, tuple[str | None, str | None] | None]:
    """Numpy-broadcast two symbolic shapes.

    Returns ``(result, conflict)`` where ``conflict`` is the offending
    dim pair when two *known* non-1 dims disagree (the caller turns
    that into a finding), else ``None``.
    """
    if left is None or right is None:
        return None, None
    out: list[str | None] = []
    for i in range(1, max(len(left), len(right)) + 1):
        l = left[-i] if i <= len(left) else "1"
        r = right[-i] if i <= len(right) else "1"
        if l is None or r is None:
            out.append(None)
        elif l == r:
            out.append(l)
        elif l == "1":
            out.append(r)
        elif r == "1":
            out.append(l)
        else:
            return None, (l, r)
    return tuple(reversed(out)), None


class _FunctionShapeChecker:
    """Propagates symbolic shapes through one function body."""

    def __init__(
        self,
        rule: "ShapeContracts",
        file: SourceFile,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        env: dict[str, tuple[str | None, ...]],
        bindings: dict[str, str],
        local_names: frozenset[str],
        class_name: str | None,
        module: str,
    ) -> None:
        self.rule = rule
        self.file = file
        self.func = func
        self.env: dict[str, tuple[str | None, ...] | None] = dict(env)
        self.bindings = bindings
        self.local_names = local_names
        self.class_name = class_name
        self.module = module
        self.findings: list[Finding] = []
        self.call_facts: list[dict[str, Any]] = []
        self.qualname = (
            f"{module}.{class_name}.{func.name}"
            if class_name
            else f"{module}.{func.name}"
        )

    # -- driving -----------------------------------------------------------

    def run(self) -> None:
        for statement in self._statements(self.func.body):
            self._visit_statement(statement)

    def _statements(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        for statement in body:
            yield statement
            for block in ("body", "orelse", "finalbody"):
                inner = getattr(statement, block, None)
                if isinstance(inner, list) and not isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    yield from self._statements(
                        [s for s in inner if isinstance(s, ast.stmt)]
                    )
            for handler in getattr(statement, "handlers", []):
                yield from self._statements(handler.body)

    def _visit_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            shape = self._infer(statement.value)
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    self.env[target.id] = shape
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            if isinstance(statement.target, ast.Name):
                declared = _shape_specs(statement.annotation)
                inferred = self._infer(statement.value)
                self.env[statement.target.id] = (
                    tuple(declared) if declared is not None else inferred
                )
        elif isinstance(statement, ast.AugAssign):
            if isinstance(statement.target, ast.Name):
                current = self.env.get(statement.target.id)
                result, conflict = _broadcast(
                    current, self._infer(statement.value)
                )
                self._report_conflict(statement, conflict)
                self.env[statement.target.id] = result
        elif isinstance(statement, ast.Expr):
            self._infer(statement.value)
        elif isinstance(statement, ast.Return) and statement.value is not None:
            self._infer(statement.value)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._infer(statement.iter)
            if isinstance(statement.target, ast.Name):
                self.env[statement.target.id] = None
        elif isinstance(statement, (ast.If, ast.While)):
            self._infer(statement.test)

    def _report_conflict(
        self, node: ast.AST, conflict: tuple[str | None, str | None] | None
    ) -> None:
        if conflict is None:
            return
        left, right = conflict
        self.findings.append(
            self.rule.finding(
                self.file,
                node,
                f"broadcast mismatch: dim {left!r} vs {right!r} (declared "
                "independent in this function's Shape contracts)",
            )
        )

    # -- inference ---------------------------------------------------------

    def _infer(self, expr: ast.expr) -> tuple[str | None, ...] | None:
        try:
            return self._infer_inner(expr)
        except RecursionError:  # pragma: no cover - pathological nesting
            return None

    def _infer_inner(self, expr: ast.expr) -> tuple[str | None, ...] | None:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float, complex, bool)):
                return ()  # scalars broadcast with anything
            return None
        if isinstance(expr, ast.BinOp):
            left = self._infer(expr.left)
            right = self._infer(expr.right)
            if isinstance(expr.op, ast.MatMult):
                return self._matmul(expr, left, right)
            result, conflict = _broadcast(left, right)
            self._report_conflict(expr, conflict)
            return result
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand)
        if isinstance(expr, ast.Compare):
            result = self._infer(expr.left)
            for comparator in expr.comparators:
                result, conflict = _broadcast(result, self._infer(comparator))
                self._report_conflict(expr, conflict)
            return result
        if isinstance(expr, ast.Subscript):
            return self._subscript(expr)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                base = self._infer(expr.value)
                return None if base is None else tuple(reversed(base))
            return None
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.IfExp):
            body = self._infer(expr.body)
            orelse = self._infer(expr.orelse)
            return body if body == orelse else None
        if isinstance(expr, ast.NamedExpr):
            shape = self._infer(expr.value)
            if isinstance(expr.target, ast.Name):
                self.env[expr.target.id] = shape
            return shape
        return None

    def _matmul(
        self,
        expr: ast.BinOp,
        left: tuple[str | None, ...] | None,
        right: tuple[str | None, ...] | None,
    ) -> tuple[str | None, ...] | None:
        if left is None or right is None:
            return None
        if len(left) == 2 and len(right) == 2:
            inner_l, inner_r = left[1], right[0]
            if (
                inner_l is not None
                and inner_r is not None
                and inner_l != inner_r
            ):
                self.findings.append(
                    self.rule.finding(
                        self.file,
                        expr,
                        f"matmul inner-dim mismatch: {_render(left)} @ "
                        f"{_render(right)}",
                    )
                )
                return None
            return (left[0], right[1])
        if len(left) == 2 and len(right) == 1:
            if (
                left[1] is not None
                and right[0] is not None
                and left[1] != right[0]
            ):
                self.findings.append(
                    self.rule.finding(
                        self.file,
                        expr,
                        f"matmul inner-dim mismatch: {_render(left)} @ "
                        f"{_render(right)}",
                    )
                )
                return None
            return (left[0],)
        if len(left) == 1 and len(right) == 2:
            return (right[1],)
        return None

    def _subscript(self, expr: ast.Subscript) -> tuple[str | None, ...] | None:
        base = self._infer(expr.value)
        if base is None:
            return None
        index = expr.slice
        items = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        out: list[str | None] = []
        axis = 0
        for item in items:
            if isinstance(item, ast.Slice):
                if axis >= len(base):
                    return None
                out.append(base[axis] if _is_full_slice(item) else None)
                axis += 1
            elif isinstance(item, ast.Constant) and item.value is None:
                out.append("1")  # np.newaxis
            elif isinstance(item, ast.Constant) and isinstance(item.value, int):
                axis += 1  # integer index drops the axis
            elif isinstance(item, ast.Constant) and item.value is Ellipsis:
                return None
            elif isinstance(item, (ast.Name, ast.UnaryOp, ast.BinOp)):
                axis += 1  # dynamic scalar index still drops the axis
            else:
                return None  # masks / fancy indexing: give up
        if axis > len(base):
            return None
        out.extend(base[axis:])
        return tuple(out)

    def _call(self, expr: ast.Call) -> tuple[str | None, ...] | None:
        callee = self._resolve_callee(expr)
        if callee is not None and callee.startswith("repro."):
            self._emit_call_fact(expr, callee)
        if isinstance(expr.func, ast.Attribute):
            method = expr.func.attr
            receiver = self._infer(expr.func.value)
            if method in _PASSTHROUGH_METHODS and receiver is not None:
                return receiver
            if method in _REDUCTION_METHODS and receiver is not None:
                return self._reduce(expr, receiver)
            if method == "reshape":
                return self._reshape(expr)
            if method in ("ravel", "flatten") and receiver is not None:
                return (None,)
        if callee is None:
            return None
        if callee in _ELEMENTWISE_UNARY:
            return self._infer(expr.args[0]) if expr.args else None
        if callee in _ELEMENTWISE_NARY:
            result: tuple[str | None, ...] | None = ()
            for argument in expr.args:
                result, conflict = _broadcast(result, self._infer(argument))
                self._report_conflict(expr, conflict)
            return result
        if callee in ("numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"):
            return self._literal_shape(expr.args[0]) if expr.args else None
        if callee in ("numpy.column_stack", "numpy.stack"):
            return self._stack(expr, callee)
        if callee == "numpy.linalg.norm":
            return self._reduce(expr, self._infer(expr.args[0])) if expr.args else None
        if callee in ("numpy.argsort", "numpy.sort", "numpy.cumsum"):
            return self._infer(expr.args[0]) if expr.args else None
        if callee == "numpy.searchsorted" and len(expr.args) >= 2:
            return self._infer(expr.args[1])
        return None

    def _resolve_callee(self, expr: ast.Call) -> str | None:
        dotted = dotted_name(expr.func)
        if dotted is None:
            return None
        head = dotted.partition(".")[0]
        if head == "self" and self.class_name is not None:
            rest = dotted.partition(".")[2]
            if rest and "." not in rest:
                return f"{self.module}.{self.class_name}.{rest}"
            return None
        if head in self.bindings:
            return canonicalize(dotted, self.bindings)
        if head in self.local_names:
            return f"{self.module}.{dotted}"
        return dotted

    def _emit_call_fact(self, expr: ast.Call, callee: str) -> None:
        arg_dims = [_dims_to_json(self._infer(a)) for a in expr.args]
        if all(d is None for d in arg_dims):
            return  # nothing known, nothing checkable
        site = CallSite(
            caller=self.qualname,
            callee=callee,
            line=expr.lineno,
            col=expr.col_offset,
        )
        self.call_facts.append({**site.to_dict(), "arg_dims": arg_dims})

    def _reduce(
        self, expr: ast.Call, receiver: tuple[str | None, ...] | None
    ) -> tuple[str | None, ...] | None:
        if receiver is None:
            return None
        axis_value: int | None = None
        has_axis = False
        keepdims = False
        for keyword in expr.keywords:
            if keyword.arg == "axis":
                has_axis = True
                if isinstance(keyword.value, ast.Constant) and isinstance(
                    keyword.value.value, int
                ):
                    axis_value = keyword.value.value
                elif isinstance(keyword.value, ast.UnaryOp) and isinstance(
                    keyword.value.operand, ast.Constant
                ):
                    operand = keyword.value.operand.value
                    if isinstance(operand, int):
                        axis_value = -operand
            elif keyword.arg == "keepdims":
                if isinstance(keyword.value, ast.Constant):
                    keepdims = bool(keyword.value.value)
                else:
                    return None  # dynamic keepdims: shape unknowable
        if not has_axis and not expr.args:
            if keepdims:
                return ("1",) * len(receiver)
            return ()  # full reduction
        if axis_value is None:
            return None
        try:
            normalized = axis_value % len(receiver)
        except ZeroDivisionError:
            return None
        if keepdims:
            # The reduced axis survives as a broadcastable length-1 dim.
            return receiver[:normalized] + ("1",) + receiver[normalized + 1 :]
        return receiver[:normalized] + receiver[normalized + 1 :]

    def _reshape(self, expr: ast.Call) -> tuple[str | None, ...] | None:
        args = list(expr.args)
        if len(args) == 1 and isinstance(args[0], ast.Tuple):
            args = list(args[0].elts)
        out: list[str | None] = []
        for argument in args:
            if isinstance(argument, ast.Constant) and isinstance(
                argument.value, int
            ):
                out.append(None if argument.value == -1 else str(argument.value))
            elif isinstance(argument, ast.UnaryOp) and isinstance(
                argument.op, ast.USub
            ):
                out.append(None)  # -1 (or any negative): inferred dim
            else:
                out.append(None)
        return tuple(out) if out else None

    def _stack(
        self, expr: ast.Call, callee: str
    ) -> tuple[str | None, ...] | None:
        if not expr.args or not isinstance(expr.args[0], (ast.List, ast.Tuple)):
            return None
        elements = expr.args[0].elts
        shapes = [self._infer(e) for e in elements]
        if not shapes or any(s is None for s in shapes):
            return None
        first = shapes[0]
        if any(s != first for s in shapes[1:]):
            return None  # unequal element shapes: leave to numpy
        k = str(len(elements))
        assert first is not None
        if callee == "numpy.column_stack" and len(first) == 1:
            return (first[0], k)
        if callee == "numpy.stack":
            for keyword in expr.keywords:
                if keyword.arg == "axis":
                    return None  # non-default axis: skip
            return (k,) + first
        return None

    def _literal_shape(self, argument: ast.expr) -> tuple[str | None, ...] | None:
        if isinstance(argument, ast.Constant) and isinstance(argument.value, int):
            return (str(argument.value),)
        if isinstance(argument, ast.Tuple):
            out: list[str | None] = []
            for element in argument.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, int
                ):
                    out.append(str(element.value))
                else:
                    out.append(None)
            return tuple(out)
        return None


class ShapeContracts(Rule):
    """SHP001: Shape-annotated signatures are checked at every call edge.

    Per file, shapes propagate through each function (broadcast and
    matmul mismatches are findings); per tree, the emitted call-graph
    facts are resolved against every declared contract and argument
    shapes are validated with consistent symbol binding.
    """

    id = "SHP001"
    tier = "error"
    title = "symbolic shape-contract violation"
    version = 2

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src:
            return [], None
        bindings = import_bindings(file.tree)
        module = module_name(file.display)
        findings: list[Finding] = []
        contracts: list[dict[str, Any]] = []
        calls: list[dict[str, Any]] = []
        top_level = {
            n.name
            for n in getattr(file.tree, "body", [])
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        for class_name, func in _functions_with_class(file.tree):
            env: dict[str, tuple[str | None, ...]] = {}
            params: dict[str, list[str]] = {}
            for arg in list(func.args.posonlyargs) + list(func.args.args):
                dims = _shape_specs(arg.annotation)
                if dims is not None:
                    env[arg.arg] = tuple(dims)
                    params[arg.arg] = list(dims)
            returns = _shape_specs(func.returns)
            qualname = (
                f"{module}.{class_name}.{func.name}"
                if class_name
                else f"{module}.{func.name}"
            )
            if params or returns is not None:
                arg_order = [
                    a.arg
                    for a in list(func.args.posonlyargs) + list(func.args.args)
                ]
                contracts.append(
                    {
                        "qualname": qualname,
                        "arg_order": arg_order,
                        "params": params,
                        "returns": list(returns) if returns is not None else None,
                        "path": file.display,
                        "line": func.lineno,
                    }
                )
            checker = _FunctionShapeChecker(
                rule=self,
                file=file,
                func=func,
                env=env,
                bindings=bindings,
                local_names=frozenset(top_level),
                class_name=class_name,
                module=module,
            )
            checker.run()
            findings.extend(checker.findings)
            calls.extend(checker.call_facts)
        facts = {"contracts": contracts, "calls": calls}
        if not contracts and not calls:
            return findings, None
        return findings, facts

    def cross_check(self, facts: list[tuple[str, Any]]) -> list[Finding]:
        contracts: dict[str, dict[str, Any]] = {}
        call_payloads: list[tuple[str, dict[str, Any]]] = []
        for display, payload in facts:
            for contract in payload.get("contracts", []):
                contracts[contract["qualname"]] = contract
            for call in payload.get("calls", []):
                call_payloads.append((display, call))
        # The joined call graph over every file's facts; a caller none
        # of whose outgoing edges reach a contracted function is skipped
        # without deserializing its per-call shape payloads.
        graph = CallGraph(
            [CallSite.from_dict(call) for _, call in call_payloads]
        )
        findings: list[Finding] = []
        for display, call in call_payloads:
            caller = str(call["caller"])
            if not graph.callees(caller) & contracts.keys():
                continue
            site = CallSite.from_dict(call)
            contract = contracts.get(site.callee)
            if contract is None:
                continue
            findings.extend(
                self._check_call(display, site, call, contract)
            )
        return findings

    def _check_call(
        self,
        display: str,
        site: CallSite,
        call: dict[str, Any],
        contract: dict[str, Any],
    ) -> list[Finding]:
        arg_order: list[str] = list(contract["arg_order"])
        if arg_order and arg_order[0] in ("self", "cls"):
            arg_order = arg_order[1:]
        params: dict[str, list[str]] = contract["params"]
        bindings: dict[str, str] = {}
        findings: list[Finding] = []
        for position, raw_dims in enumerate(call.get("arg_dims", [])):
            actual = _dims_from_json(raw_dims)
            if actual is None or position >= len(arg_order):
                continue
            param = arg_order[position]
            declared = params.get(param)
            if declared is None:
                continue
            problem = _bind_and_check(tuple(declared), actual, bindings)
            if problem is not None:
                findings.append(
                    Finding(
                        rule=self.id,
                        tier=self.tier,
                        path=display,
                        line=site.line,
                        col=site.col + 1,
                        message=(
                            f"argument {param!r} of {site.callee} "
                            f"declares Shape {_render(tuple(declared))} but "
                            f"receives {_render(actual)}: {problem}"
                        ),
                    )
                )
        return findings


def _bind_and_check(
    declared: tuple[str, ...],
    actual: tuple[str | None, ...],
    bindings: dict[str, str],
) -> str | None:
    """Check one argument against its contract; return the problem or None.

    Flags only provable violations: rank mismatch, unequal literal
    dims, or one contract symbol bound to two different literals.
    Caller-side symbols never conflict with each other (their equality
    is unknowable here).
    """
    if len(declared) != len(actual):
        return f"rank {len(actual)} != declared rank {len(declared)}"
    for index, (want, have) in enumerate(zip(declared, actual)):
        if have is None:
            continue
        if want.isdigit():
            if have.isdigit() and want != have:
                return f"axis {index} is {have}, contract requires {want}"
            continue
        bound = bindings.get(want)
        if bound is None:
            bindings[want] = have
        elif bound.isdigit() and have.isdigit() and bound != have:
            return (
                f"axis {index} binds symbol {want!r} to {have} but it was "
                f"already bound to {bound}"
            )
    return None
