"""PUR001: everything crossing the process boundary is a pure value.

The fleet engine pickles :class:`~repro.fleet.executor.WalkJob`\\ s into
worker processes and promises that two jobs with equal fields produce
equal results.  That promise dies quietly the moment a job (or a
:class:`~repro.faults.plan.FaultPlan` riding on one) grows a lambda, an
open handle, a lock, or a mutable field — some of those fail loudly at
pickle time, but mutable fields just produce jobs whose equality and
hashing lie.  This rule pins the convention at the source: dataclasses
defined in the ``repro.fleet`` and ``repro.faults`` packages are frozen
pure values, and nobody hands a lambda to the executor entry points.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.analysis.engine import Finding, Rule, SourceFile
from repro.analysis.names import canonicalize, dotted_name, import_bindings

#: Package path fragments whose dataclasses cross the process boundary.
_BOUNDARY_PACKAGES = ("repro/fleet/", "repro/faults/")

#: Constructors whose result can never ride on a frozen boundary value.
_IMPURE_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "open",
        "io.open",
    }
)

#: Annotation heads naming mutable containers (hash/equality hazards).
_MUTABLE_TYPES = frozenset(
    {"list", "dict", "set", "bytearray", "List", "Dict", "Set"}
)

#: Fleet entry points whose arguments get pickled into workers.
_BOUNDARY_CALLS = frozenset(
    {
        "repro.fleet.run_walks",
        "repro.fleet.iter_walks",
        "repro.fleet.executor.run_walks",
        "repro.fleet.executor.iter_walks",
        "repro.fleet.executor.execute_job",
    }
)


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | ast.Call | None:
    """Return the ``@dataclass`` decorator node, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    """Return True when the dataclass decorator passes ``frozen=True``."""
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _annotation_head(annotation: ast.expr | None) -> str | None:
    """Return the outermost type name of a field annotation.

    Handles string annotations (``"FaultPlan | None"``) by re-parsing,
    and subscripted generics (``list[int]``) by looking at the base.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    return dotted_name(annotation)


class ProcessBoundaryPurity(Rule):
    """PUR001: boundary dataclasses are frozen; their fields are pure.

    In the fleet/faults packages, every ``@dataclass`` must declare
    ``frozen=True``, and its fields may not be typed as mutable
    containers, defaulted to lambdas/locks/handles, or built from a
    ``default_factory`` producing a mutable container.  Additionally,
    anywhere in ``src``, passing a ``lambda`` to a fleet entry point
    (``run_walks``/``iter_walks``) is flagged — lambdas don't pickle.
    """

    id = "PUR001"
    tier = "error"
    title = "impure value at the process boundary"
    version = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src:
            return [], None
        findings: list[Finding] = []
        if any(fragment in file.display for fragment in _BOUNDARY_PACKAGES):
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_dataclass(file, node))
        findings.extend(self._check_boundary_calls(file))
        return findings, None

    def _check_dataclass(
        self, file: SourceFile, node: ast.ClassDef
    ) -> list[Finding]:
        decorator = _dataclass_decorator(node)
        if decorator is None:
            return []
        findings: list[Finding] = []
        if not _is_frozen(decorator):
            findings.append(
                self.finding(
                    file,
                    node,
                    f"dataclass {node.name} crosses the process boundary "
                    "but is not frozen=True; boundary values must be "
                    "immutable and hashable",
                )
            )
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            findings.extend(self._check_field(file, node.name, statement))
        return findings

    def _check_field(
        self, file: SourceFile, class_name: str, field_node: ast.AnnAssign
    ) -> list[Finding]:
        findings: list[Finding] = []
        name = (
            field_node.target.id
            if isinstance(field_node.target, ast.Name)
            else "<field>"
        )
        head = _annotation_head(field_node.annotation)
        if head in _MUTABLE_TYPES:
            findings.append(
                self.finding(
                    file,
                    field_node,
                    f"{class_name}.{name} is typed as mutable {head}; use "
                    "tuple/frozenset (or a frozen dataclass) on boundary "
                    "values",
                )
            )
        default = field_node.value
        if default is None:
            return findings
        bindings = import_bindings(file.tree)
        for sub in ast.walk(default):
            if isinstance(sub, ast.Lambda):
                findings.append(
                    self.finding(
                        file,
                        sub,
                        f"{class_name}.{name} defaults to a lambda; "
                        "lambdas don't pickle across the process boundary",
                    )
                )
            elif isinstance(sub, (ast.List, ast.Dict, ast.Set)):
                findings.append(
                    self.finding(
                        file,
                        sub,
                        f"{class_name}.{name} has a mutable default "
                        "container; boundary fields must be immutable",
                    )
                )
            elif isinstance(sub, ast.Call):
                dotted = dotted_name(sub.func)
                if dotted is None:
                    continue
                canonical = canonicalize(dotted, bindings)
                if canonical in _IMPURE_CONSTRUCTORS:
                    findings.append(
                        self.finding(
                            file,
                            sub,
                            f"{class_name}.{name} defaults to "
                            f"{canonical}(); locks and handles cannot "
                            "cross the process boundary",
                        )
                    )
                elif canonical in ("dataclasses.field", "field"):
                    findings.extend(
                        self._check_factory(file, class_name, name, sub)
                    )
        return findings

    def _check_factory(
        self, file: SourceFile, class_name: str, name: str, call: ast.Call
    ) -> list[Finding]:
        for keyword in call.keywords:
            if keyword.arg != "default_factory":
                continue
            factory = dotted_name(keyword.value)
            if factory in _MUTABLE_TYPES:
                return [
                    self.finding(
                        file,
                        call,
                        f"{class_name}.{name} uses default_factory="
                        f"{factory}; boundary fields must be immutable "
                        "(use a tuple default)",
                    )
                ]
        return []

    def _check_boundary_calls(self, file: SourceFile) -> list[Finding]:
        bindings = import_bindings(file.tree)
        findings: list[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            canonical = canonicalize(dotted, bindings)
            short = canonical.rpartition(".")[2]
            if (
                canonical not in _BOUNDARY_CALLS
                and short not in ("run_walks", "iter_walks")
            ):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                for sub in ast.walk(argument):
                    if isinstance(sub, ast.Lambda):
                        findings.append(
                            self.finding(
                                file,
                                sub,
                                f"lambda passed into {short}(); closures "
                                "don't pickle across the process boundary",
                            )
                        )
        return findings
