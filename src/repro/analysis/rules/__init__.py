"""The built-in rule registry for ``repro lint``.

Adding a rule is three steps: subclass
:class:`~repro.analysis.engine.Rule` in a module here, instantiate it in
:func:`default_rules`, and drop a known-bad fixture under
``tests/analysis/fixtures/`` so the rule's behavior is pinned.  The
engine handles everything else (caching, baselining, CLI/CI wiring).
"""

from __future__ import annotations

from repro.analysis.rules.determinism import (
    DET002_ALLOWED_MODULES,
    UnseededRandomness,
    WallClockRead,
)
from repro.analysis.rules.observability import MetricNameIntegrity
from repro.analysis.rules.purity import ProcessBoundaryPurity
from repro.analysis.rules.units import UnitSuffixConvention

__all__ = [
    "DET002_ALLOWED_MODULES",
    "MetricNameIntegrity",
    "ProcessBoundaryPurity",
    "UnitSuffixConvention",
    "UnseededRandomness",
    "WallClockRead",
    "default_rules",
]


def default_rules() -> list:
    """Return one fresh instance of every built-in rule, id-ordered."""
    rules = [
        UnseededRandomness(),
        WallClockRead(),
        MetricNameIntegrity(),
        ProcessBoundaryPurity(),
        UnitSuffixConvention(),
    ]
    return sorted(rules, key=lambda rule: rule.id)
