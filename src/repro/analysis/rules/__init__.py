"""The built-in rule registry for ``repro lint``.

Adding a rule is three steps: subclass
:class:`~repro.analysis.engine.Rule` in a module here, instantiate it in
:func:`default_rules`, and drop a known-bad fixture under
``tests/analysis/fixtures/`` so the rule's behavior is pinned.  The
engine handles everything else (caching, baselining, CLI/CI wiring).
Rules that need to reason about where a value *came from* (rather than
what one AST node looks like) build on the dataflow IR in
:mod:`repro.analysis.dataflow`; see DESIGN.md's rule-author guide.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.determinism import (
    DET002_ALLOWED_MODULES,
    UnseededRandomness,
    WallClockRead,
)
from repro.analysis.rules.escape import EscapeAnalysis
from repro.analysis.rules.observability import MetricNameIntegrity
from repro.analysis.rules.purity import ProcessBoundaryPurity
from repro.analysis.rules.seed_lineage import SeedLineage
from repro.analysis.rules.shapes import ShapeContracts
from repro.analysis.rules.units import UnitSuffixConvention

__all__ = [
    "DET002_ALLOWED_MODULES",
    "EscapeAnalysis",
    "MetricNameIntegrity",
    "ProcessBoundaryPurity",
    "SeedLineage",
    "ShapeContracts",
    "UnitSuffixConvention",
    "UnseededRandomness",
    "WallClockRead",
    "default_rules",
]


def default_rules() -> list[Rule]:
    """Return one fresh instance of every built-in rule, id-ordered."""
    rules: list[Rule] = [
        UnseededRandomness(),
        WallClockRead(),
        SeedLineage(),
        MetricNameIntegrity(),
        ProcessBoundaryPurity(),
        EscapeAnalysis(),
        ShapeContracts(),
        UnitSuffixConvention(),
    ]
    return sorted(rules, key=lambda rule: rule.id)
