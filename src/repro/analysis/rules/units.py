"""UNIT001: physical quantities carry their unit in the name.

The paper mixes meters (map geometry), degrees (headings), dBm (radio
power), and seconds (sensor cadence), and the repo's convention is that
any parameter holding one of them says so: ``spacing_m``, ``radius_m``,
``heading_deg``, ``rssi_dbm``, ``interval_s``.  A bare ``radius`` in a
fingerprint query is exactly how a meters-vs-grid-cells bug enters the
codebase without a type error.  The rule watches the geometry/world/
radio-adjacent modules, where every bare quantity is a latent unit bug.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Any

from repro.analysis.engine import Finding, Rule, SourceFile

#: Path fragments of the modules where physical units live.
_UNIT_MODULES = (
    "repro/geometry/",
    "repro/world/",
    "repro/radio/",
    "repro/sensors/",
    "repro/core/",
)

#: Modules where UNIT001 findings are promoted to the error tier: the
#: filter/sensor layer is where a unitless ``dt`` or ``accuracy``
#: actually corrupts physics (a seconds-vs-milliseconds slip in the
#: Kalman transition is silent), so there the convention gates the build.
_ERROR_MODULES = (
    "repro/core/",
    "repro/sensors/",
)

#: Accepted unit suffixes (the paper's quantities and simple derivates).
UNIT_SUFFIXES = (
    "_m",
    "_m2",
    "_mps",
    "_deg",
    "_rad",
    "_dbm",
    "_db",
    "_s",
    "_ms",
    "_ns",
    "_hz",
)

#: Bare physical-quantity parameter names -> the suggested suffixed name.
_QUANTITIES = {
    "spacing": "spacing_m",
    "radius": "radius_m",
    "accuracy": "accuracy_m",
    "distance": "distance_m",
    "altitude": "altitude_m",
    "elevation": "elevation_m",
    "wavelength": "wavelength_m",
    "speed": "speed_mps",
    "velocity": "velocity_mps",
    "bearing": "bearing_deg",
    "heading": "heading_deg",
    "azimuth": "azimuth_deg",
    "rssi": "rssi_dbm",
    "power": "power_dbm",
    "duration": "duration_s",
    "dt": "dt_s",
    "interval": "interval_s",
    "timeout": "timeout_s",
    "latency": "latency_ms",
    "frequency": "frequency_hz",
}


def _is_numeric(annotation: ast.expr | None, default: ast.expr | None) -> bool:
    """Return True when a parameter is evidently a number.

    Either the annotation mentions ``float``/``int`` (including inside
    ``float | None`` unions) or the default is a numeric literal.
    """
    if annotation is not None:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in ("float", "int"):
                return True
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and ("float" in node.value or "int" in node.value)
            ):
                return True
    if default is not None:
        value = default
        if isinstance(value, ast.UnaryOp):
            value = value.operand
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (int, float)
        ) and not isinstance(value.value, bool):
            return True
    return False


class UnitSuffixConvention(Rule):
    """UNIT001: numeric quantity parameters name their unit.

    In the geometry/world/radio/sensors/core modules, a numeric
    parameter whose name is a bare physical quantity (``spacing``,
    ``radius``, ``heading``, ``dt``, ...) is flagged with the
    conventional suffixed spelling.  Warn tier by default: naming is a
    convention, not a correctness proof — but the fix is a rename, so
    there is little excuse.  In ``repro/core/`` and ``repro/sensors/``
    (see ``_ERROR_MODULES``) the finding is promoted to the error tier
    and gates the build.
    """

    id = "UNIT001"
    tier = "warn"
    title = "missing unit suffix on physical quantity"
    version = 2

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src or not any(
            fragment in file.display for fragment in _UNIT_MODULES
        ):
            return [], None
        findings: list[Finding] = []
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_signature(file, node))
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_fields(file, node))
        return findings, None

    def _check_fields(self, file: SourceFile, node: ast.ClassDef) -> list[Finding]:
        """Flag bare-quantity annotated class fields (dataclass style).

        A dataclass field is a constructor parameter in disguise — a
        ``dt: float`` on a filter config leaks into every call site —
        so fields follow the same suffix convention as signatures.
        """
        findings: list[Finding] = []
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            target = statement.target
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.endswith(UNIT_SUFFIXES):
                continue
            suggested = _QUANTITIES.get(name)
            if suggested is None:
                continue
            if not _is_numeric(statement.annotation, statement.value):
                continue
            findings.append(
                self._tiered(
                    file,
                    target,
                    f"field {name!r} of {node.name} is a physical "
                    f"quantity without a unit suffix; rename to "
                    f"{suggested!r}",
                )
            )
        return findings

    def _tiered(self, file: SourceFile, node: ast.AST, message: str) -> Finding:
        """Build a finding, promoted to error tier in ``_ERROR_MODULES``."""
        found = self.finding(file, node, message)
        if any(fragment in file.display for fragment in _ERROR_MODULES):
            found = replace(found, tier="error")
        return found

    def _check_signature(
        self, file: SourceFile, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        arguments = node.args
        positional = arguments.posonlyargs + arguments.args
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(arguments.defaults)
        ) + list(arguments.defaults)
        pairs = list(zip(positional, defaults)) + list(
            zip(arguments.kwonlyargs, arguments.kw_defaults)
        )
        findings: list[Finding] = []
        for argument, default in pairs:
            name = argument.arg
            if name in ("self", "cls"):
                continue
            if name.endswith(UNIT_SUFFIXES):
                continue
            suggested = _QUANTITIES.get(name)
            if suggested is None:
                continue
            if not _is_numeric(argument.annotation, default):
                continue
            findings.append(
                self._tiered(
                    file,
                    argument,
                    f"parameter {name!r} of {node.name}() is a physical "
                    f"quantity without a unit suffix; rename to "
                    f"{suggested!r}",
                )
            )
        return findings
