"""OBS001: metric and span names are well-formed and actually emitted.

The observability layer creates instruments on first access, which is
ergonomic and dangerous in equal measure: a typo'd name in a reader
(``metrics.counter("uniloc.quarantine.enterd.gps").value``) silently
reads a fresh zero counter forever.  This rule closes the loop — every
literal metric/span name in production code must fit the repo's name
grammar, and every name that is *read* must be *emitted* somewhere in
the analyzed tree.  F-string names participate as patterns: each
``{...}`` placeholder becomes a single-segment wildcard, so the read of
``uniloc.quarantine.entered.{outage}`` in the chaos matrix matches the
emit of ``uniloc.quarantine.entered.{name}`` in the framework.
"""

from __future__ import annotations

import ast
import re
from typing import Any

from repro.analysis.engine import Finding, Rule, SourceFile

#: Top-level metric namespaces in use across the pipeline.
NAMESPACES = frozenset({"uniloc", "fleet", "scheme", "repro"})

#: One literal segment of a metric name.
_SEGMENT = re.compile(r"^[a-z0-9_]+$")

#: The single-segment wildcard an f-string placeholder compiles to.
WILDCARD = "{}"

#: Registry/tracer factory methods whose first argument is a name.
_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer", "span"})

#: Method called on a factory's result -> does it write or read?
_EMIT_ATTRS = frozenset({"inc", "observe", "set", "add"})
_READ_ATTRS = frozenset(
    {
        "value",
        "values",
        "summary",
        "percentile",
        "mean",
        "count",
        "total",
        "min",
        "max",
    }
)


def name_pattern(node: ast.expr) -> str | None:
    """Compile a literal or f-string name argument into a match pattern.

    ``"uniloc.steps"`` -> ``"uniloc.steps"``;
    ``f"scheme.{name}.estimate_ms"`` -> ``"scheme.{}.estimate_ms"``;
    anything non-literal (a plain variable) -> ``None`` (out of scope —
    the registry's own pass-through helpers take names as variables).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue):
                parts.append(WILDCARD)
        return "".join(parts)
    return None


def grammar_error(pattern: str) -> str | None:
    """Return why a name pattern violates the grammar, or None if valid."""
    segments = pattern.split(".")
    if len(segments) < 2:
        return "needs at least <namespace>.<name>"
    if segments[0] not in NAMESPACES:
        return (
            f"namespace {segments[0]!r} is not one of "
            f"{'/'.join(sorted(NAMESPACES))}"
        )
    for segment in segments:
        if segment != WILDCARD and not _SEGMENT.match(segment):
            return f"segment {segment!r} is not [a-z0-9_]+"
    return None


def patterns_match(a: str, b: str) -> bool:
    """Return True when two name patterns can denote the same metric."""
    left, right = a.split("."), b.split(".")
    if len(left) != len(right):
        return False
    return all(
        x == WILDCARD or y == WILDCARD or x == y
        for x, y in zip(left, right)
    )


class MetricNameIntegrity(Rule):
    """OBS001: names fit the grammar; every read name is emitted.

    Per file (src scope): every literal name passed to
    ``counter/gauge/histogram/timer/span`` must be
    ``<namespace>.<segment>...`` with a known namespace and
    ``[a-z0-9_]+`` segments.  Across files: a name whose instrument is
    only ever *read* (``.value``, ``.summary()``, ...) must match a
    name that is emitted (``.inc()``, ``.observe()``, a ``timer`` or a
    ``span``) somewhere, or the reader is watching a counter nothing
    increments.
    """

    id = "OBS001"
    tier = "error"
    title = "metric/span name integrity"
    version = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src:
            return [], None
        findings: list[Finding] = []
        emitted: list[str] = []
        read: list[tuple[str, int, int]] = []
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _FACTORIES
                and node.args
            ):
                continue
            pattern = name_pattern(node.args[0])
            if pattern is None:
                continue
            problem = grammar_error(pattern)
            if problem is not None:
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"metric name {pattern!r} breaks the grammar: "
                        f"{problem}",
                    )
                )
                continue
            if self._is_read(file, node):
                read.append((pattern, node.lineno, node.col_offset + 1))
            else:
                emitted.append(pattern)
        facts = {"emitted": sorted(set(emitted)), "read": read}
        return findings, facts

    @staticmethod
    def _is_read(file: SourceFile, node: ast.Call) -> bool:
        """Classify one factory call as a read (vs an emit/creation).

        ``timer``/``span`` always record.  Otherwise the verdict comes
        from what is done with the returned instrument: ``.inc()`` and
        friends emit, ``.value`` and friends read, and a bare factory
        call (instrument handed elsewhere) counts as an emit site —
        the instrument now exists either way.
        """
        assert isinstance(node.func, ast.Attribute)
        if node.func.attr in ("timer", "span"):
            return False
        parent = file.parent_of(node)
        if isinstance(parent, ast.Attribute):
            if parent.attr in _READ_ATTRS:
                return True
            if parent.attr in _EMIT_ATTRS:
                return False
        return False

    def cross_check(self, facts: list[tuple[str, Any]]) -> list[Finding]:
        emitted = [
            pattern
            for _, file_facts in facts
            for pattern in file_facts.get("emitted", [])
        ]
        findings: list[Finding] = []
        for display, file_facts in facts:
            for pattern, line, col in file_facts.get("read", []):
                if any(patterns_match(pattern, emit) for emit in emitted):
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        tier=self.tier,
                        path=display,
                        line=line,
                        col=col,
                        message=(
                            f"metric {pattern!r} is read here but never "
                            "emitted anywhere in the analyzed tree; the "
                            "reader would watch a permanently-zero "
                            "instrument"
                        ),
                    )
                )
        return findings
