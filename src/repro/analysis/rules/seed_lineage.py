"""DET101: every RNG seed must *derive* from a declared seed.

DET001 catches ``default_rng()`` with no argument; it says nothing
about what the argument is.  ``default_rng(0)`` buried in a class
initializer, ``default_rng(x)`` where ``x`` was computed from a length
or an index, or an RNG object parked in a module global all pass the
syntactic rule while silently detaching a result from the experiment's
seed tree.  DET101 closes that gap with the dataflow IR: the seed
expression's :class:`~repro.analysis.dataflow.Origin` set must contain
at least one value whose lineage reaches a *seed-named* parameter,
attribute, or module constant (``seed``, ``walk_seed``,
``self.plan.seed``, ``DEFAULT_SEED``, ...) — arithmetic, tuple
packing, and local aliasing are traced through.

Two sink-side shapes are additionally errors: an RNG constructed at
module scope (a process-global stream, order-dependent by
construction) and an RNG object flowing into the fleet boundary
(``WalkJob`` fields / ``run_walks`` arguments must carry seeds, not
generators — generators don't pickle portably and hide their lineage).
"""

from __future__ import annotations

import ast
import re
from typing import Any

from repro.analysis.dataflow import (
    FunctionDataflow,
    Origin,
    module_global_assigns,
)
from repro.analysis.engine import Finding, Rule, SourceFile
from repro.analysis.names import canonical_call, dotted_name, import_bindings

#: Canonical constructors whose result is an RNG stream.
_RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

#: A name "is a seed" when any underscore-separated token is ``seed``
#: or ``seeds`` (optionally numbered): ``seed``, ``walk_seed``,
#: ``DEFAULT_SEED``, ``seed0``, ``tx_seed`` — but not ``seeded_from``.
_SEED_TOKEN = re.compile(r"(?i)(^|_)seeds?\d*(_|$)")

#: Call results that *are* seed material: deriving from a seed sequence
#: keeps lineage (``SeedSequence(seed).spawn(...)`` and friends).
_SEED_CALL_MARKERS = ("SeedSequence", ".spawn", "seed_for", "derive_seed")

#: Fleet boundary sinks (mirrors PUR001's entry-point list): RNG
#: objects must not flow into these.
_BOUNDARY_SHORT_NAMES = frozenset({"run_walks", "iter_walks", "WalkJob"})


def _is_seed_named(detail: str) -> bool:
    """Return True when a dotted detail's final segment is seed-named."""
    final = detail.rpartition(".")[2]
    return bool(_SEED_TOKEN.search(final))


def _is_seed_lineage(origin: Origin) -> bool:
    """Return True when one origin counts as seed-derived."""
    if origin.kind in ("param", "attribute", "global", "import"):
        return _is_seed_named(origin.detail)
    if origin.kind == "call":
        final = origin.detail.rpartition(".")[2]
        return _is_seed_named(final) or any(
            marker in origin.detail for marker in _SEED_CALL_MARKERS
        )
    return False


def _walk_functions(
    tree: ast.AST,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Return every function node, nested ones included, innermost first.

    ``ast.walk`` is breadth-first, so reversing its order yields deeper
    functions before their enclosing ones — each call expression is
    then attributed to the innermost scope that contains it.
    """
    return [
        node
        for node in reversed(list(ast.walk(tree)))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


class SeedLineage(Rule):
    """DET101: RNG seeds derive from seed parameters; RNGs stay local.

    For every ``default_rng(expr)`` in ``src`` scope, ``expr``'s origin
    set (through local assignments, tuple packing, arithmetic, and
    defaults) must include at least one seed-named parameter,
    attribute chain, or module constant.  A seed built from constants
    or untraceable values alone is an error.  RNG objects assigned to
    module globals, or flowing into ``WalkJob``/``run_walks``/
    ``iter_walks`` arguments, are errors regardless of how they were
    seeded.
    """

    id = "DET101"
    tier = "error"
    title = "RNG seed with no seed-parameter lineage"
    version = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src:
            return [], None
        bindings = import_bindings(file.tree)
        findings: list[Finding] = []
        findings.extend(self._check_module_globals(file, bindings))

        seen_calls: set[ast.Call] = set()
        for func in _walk_functions(file.tree):
            flow = FunctionDataflow(func, bindings)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or node in seen_calls:
                    continue
                seen_calls.add(node)
                canonical = canonical_call(node, bindings)
                if canonical in _RNG_CONSTRUCTORS:
                    findings.extend(self._check_seed_expr(file, flow, node))
                elif canonical is not None:
                    findings.extend(
                        self._check_boundary_args(
                            file, flow, node, canonical
                        )
                    )
        return findings, None

    def _check_module_globals(
        self, file: SourceFile, bindings: dict[str, str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for names, value in module_global_assigns(file.tree):
            for sub in ast.walk(value):
                if not isinstance(sub, ast.Call):
                    continue
                if canonical_call(sub, bindings) in _RNG_CONSTRUCTORS:
                    findings.append(
                        self.finding(
                            file,
                            sub,
                            f"RNG stored in module global {names[0]!r}; a "
                            "process-global stream makes results depend on "
                            "call order — construct RNGs from seeds at the "
                            "point of use",
                        )
                    )
        return findings

    def _check_seed_expr(
        self, file: SourceFile, flow: FunctionDataflow, call: ast.Call
    ) -> list[Finding]:
        seed_exprs = list(call.args) + [
            kw.value for kw in call.keywords if kw.arg == "seed"
        ]
        if not seed_exprs:
            return []  # the no-argument case is DET001's
        origins: set[Origin] = set()
        for expr in seed_exprs:
            origins |= flow.origins(expr)
        if any(_is_seed_lineage(origin) for origin in origins):
            return []
        if all(origin.kind == "const" for origin in origins):
            return [
                self.finding(
                    file,
                    call,
                    "RNG seeded from constants only; derive the seed from "
                    "a seed parameter (walk/plan/config) so the stream "
                    "joins the experiment's seed tree",
                )
            ]
        described = ", ".join(
            sorted(o.describe() for o in origins if o.kind != "const")
        )
        return [
            self.finding(
                file,
                call,
                f"RNG seed does not derive from any seed parameter "
                f"(origins: {described or 'unknown'}); thread an explicit "
                "seed through instead",
            )
        ]

    def _check_boundary_args(
        self,
        file: SourceFile,
        flow: FunctionDataflow,
        call: ast.Call,
        canonical: str,
    ) -> list[Finding]:
        short = canonical.rpartition(".")[2]
        if short not in _BOUNDARY_SHORT_NAMES:
            return []
        findings: list[Finding] = []
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for origin in flow.origins(argument):
                if origin.kind == "call" and origin.detail in _RNG_CONSTRUCTORS:
                    findings.append(
                        self.finding(
                            file,
                            argument,
                            f"RNG object (from {origin.detail} at line "
                            f"{origin.line}) flows into {short}(); pass the "
                            "seed across the process boundary, not the "
                            "generator",
                        )
                    )
        return findings
