"""PUR101: nothing impure *escapes* into the process boundary.

PUR001 is structural: it inspects the boundary dataclass definitions
and flags a literal lambda in a ``run_walks`` argument list.  What it
cannot see is a value that picks up its impurity earlier and arrives at
the boundary through a local — a closure bound to a variable, a
function defined three lines up, a list built in a loop and passed as a
``WalkJob`` field, or a mutable container arriving via a parameter's
default.  PUR101 runs the same boundary check through the dataflow IR:
every argument's :class:`~repro.analysis.dataflow.Origin` set is
resolved, and any path that can carry a lambda, a locally-defined
function, a mutable container (for job *fields*), or a lock/handle
constructor is an error — with the finding pointing at the line where
the impure value was born, not just where it escaped.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.analysis.dataflow import FunctionDataflow, Origin
from repro.analysis.engine import Finding, Rule, SourceFile
from repro.analysis.names import canonical_call, import_bindings

#: Constructors whose result can never cross the boundary (same set
#: PUR001 polices in dataclass defaults, applied here to dataflow).
_IMPURE_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "open",
        "io.open",
    }
)

#: Executor entry points: arguments are pickled into workers.  Mutable
#: containers are fine here (the jobs list itself is one); callables
#: are not.
_EXECUTOR_SHORT_NAMES = frozenset({"run_walks", "iter_walks", "execute_job"})

#: Boundary value constructors: every field must be a pure value, so
#: mutable containers are errors too.
_JOB_SHORT_NAMES = frozenset({"WalkJob"})


def _site(origin: Origin) -> str:
    """Render where the impure value was born, for the message."""
    return f"line {origin.line}" if origin.line else "an unknown site"


class EscapeAnalysis(Rule):
    """PUR101: impure values may not reach the fleet boundary via locals.

    For each call to ``run_walks``/``iter_walks``/``execute_job`` or a
    ``WalkJob`` construction in ``src`` scope, every argument's origin
    set is resolved through the function's def-use map.  Lambdas and
    locally-defined functions are errors at both sinks (closures don't
    pickle); mutable containers and lock/file constructors are errors
    for job fields (boundary values must be immutable and hashable).
    """

    id = "PUR101"
    tier = "error"
    title = "impure value escapes to the process boundary via dataflow"
    version = 1

    def check(self, file: SourceFile) -> tuple[list[Finding], Any]:
        if not file.in_src:
            return [], None
        bindings = import_bindings(file.tree)
        findings: list[Finding] = []
        seen_calls: set[ast.Call] = set()
        functions = [
            node
            for node in reversed(list(ast.walk(file.tree)))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            flow = FunctionDataflow(func, bindings)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or node in seen_calls:
                    continue
                seen_calls.add(node)
                canonical = canonical_call(node, bindings)
                if canonical is None:
                    continue
                short = canonical.rpartition(".")[2]
                if short in _EXECUTOR_SHORT_NAMES:
                    findings.extend(
                        self._check_sink(file, flow, node, short, fields=False)
                    )
                elif short in _JOB_SHORT_NAMES:
                    findings.extend(
                        self._check_sink(file, flow, node, short, fields=True)
                    )
        return findings, None

    def _check_sink(
        self,
        file: SourceFile,
        flow: FunctionDataflow,
        call: ast.Call,
        short: str,
        fields: bool,
    ) -> list[Finding]:
        findings: list[Finding] = []
        arguments: list[tuple[str, ast.expr]] = [
            (f"argument {i + 1}", a) for i, a in enumerate(call.args)
        ] + [(f"field {kw.arg}", kw.value) for kw in call.keywords if kw.arg]
        for label, argument in arguments:
            # Lambda literals written directly in an executor argument
            # are PUR001's finding; PUR101 adds the *smuggled* paths.
            direct_lambdas = (
                frozenset(
                    (n.lineno, n.col_offset)
                    for n in ast.walk(argument)
                    if isinstance(n, ast.Lambda)
                )
                if not fields
                else frozenset()
            )
            for origin in sorted(
                flow.origins(argument), key=lambda o: (o.line, o.col)
            ):
                if (
                    origin.kind == "lambda"
                    and (origin.line, origin.col) in direct_lambdas
                ):
                    continue
                finding = self._classify(
                    file, argument, origin, short, label, fields
                )
                if finding is not None:
                    findings.append(finding)
                    break  # one finding per argument is enough
        return findings

    def _classify(
        self,
        file: SourceFile,
        argument: ast.expr,
        origin: Origin,
        short: str,
        label: str,
        fields: bool,
    ) -> Finding | None:
        if origin.kind == "lambda":
            return self.finding(
                file,
                argument,
                f"{label} of {short}() can carry a lambda (born at "
                f"{_site(origin)}); closures don't pickle across the "
                "process boundary",
            )
        if origin.kind == "function":
            return self.finding(
                file,
                argument,
                f"{label} of {short}() can carry locally-defined function "
                f"{origin.detail!r} (born at {_site(origin)}); nested "
                "functions don't pickle — use a module-level function",
            )
        if origin.kind == "call" and origin.detail in _IMPURE_CONSTRUCTORS:
            return self.finding(
                file,
                argument,
                f"{label} of {short}() can carry a {origin.detail}() "
                f"result (born at {_site(origin)}); locks and handles "
                "cannot cross the process boundary",
            )
        if fields and origin.kind == "container":
            return self.finding(
                file,
                argument,
                f"{label} of {short}() can carry a mutable "
                f"{origin.detail or 'container'} (born at {_site(origin)}); "
                "boundary fields must be immutable — use a tuple",
            )
        return None
