"""SARIF 2.1.0 serialization for lint reports.

``repro lint --format sarif`` emits the minimal profile GitHub code
scanning ingests: one run, one tool driver listing every rule that was
active (so the UI can show rule metadata even for clean runs), one
result per finding with a physical location and the engine's stable
fingerprint under ``partialFingerprints`` — the same fingerprint the
baseline mechanism keys on, so alert identity survives reformatting on
both surfaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.analysis.engine import LintReport, Rule

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: Map the engine's finding tiers onto SARIF result levels.
_LEVELS = {"error": "error", "warn": "warning"}


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    doc = (type(rule).__doc__ or "").strip()
    summary = doc.splitlines()[0].strip() if doc else rule.id
    return {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.tier, "warning"),
        },
    }


def to_sarif(report: LintReport, rules: list[Rule]) -> dict[str, Any]:
    """Render ``report`` as a SARIF 2.1.0 log object.

    Args:
        report: the lint result to serialize.
        rules: the rules that were active for the run — all of them,
            not just those with findings, so the driver metadata is
            complete for clean runs too.
    """
    from repro import __version__

    descriptors = [_rule_descriptor(rule) for rule in rules]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = []
    for finding in report.findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.tier, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLint/v1": finding.fingerprint(),
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
