"""Name resolution for the AST rules: local names -> canonical dotted paths.

The determinism rules need to know that ``rng()`` came from ``from
numpy.random import default_rng``, that ``t.time()`` is ``time.time``
behind ``import time as t``, and that ``npr.normal()`` is a
``numpy.random`` global-state call behind ``import numpy.random as
npr``.  :func:`import_bindings` extracts that mapping from a module's
import statements, and :func:`canonical_call` rewrites a call's dotted
name through it, so every rule matches against one canonical spelling
(``numpy.random.default_rng``, ``time.perf_counter``,
``datetime.datetime.now``) regardless of how the file imported it.

Resolution is deliberately module-level only: a name rebound inside a
function shadows the import at runtime but keeps its import-time
canonical form here.  That trades a sliver of false positives for a
resolver simple enough to audit — and the inline ``lint: ignore[...]``
escape hatch covers the exceptions.
"""

from __future__ import annotations

import ast


def import_bindings(tree: ast.AST) -> dict[str, str]:
    """Map local names to the canonical dotted path they were bound from.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from
    numpy.random import default_rng as rng`` yields ``{"rng":
    "numpy.random.default_rng"}``.  Plain ``import numpy.random`` binds
    only the root name (``{"numpy": "numpy"}``), matching Python's
    scoping.  Relative imports are skipped — their canonical prefix is
    unknowable without package context.
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return bindings


def dotted_name(node: ast.expr) -> str | None:
    """Return the source-level dotted name of an expression, if it is one.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything
    that is not a plain ``Name``/``Attribute`` chain returns ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def canonicalize(dotted: str, bindings: dict[str, str]) -> str:
    """Rewrite a dotted name's first segment through the import bindings."""
    head, _, rest = dotted.partition(".")
    canonical_head = bindings.get(head)
    if canonical_head is None:
        return dotted
    return f"{canonical_head}.{rest}" if rest else canonical_head


def canonical_call(node: ast.Call, bindings: dict[str, str]) -> str | None:
    """Return the canonical dotted name a call resolves to, if resolvable."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return canonicalize(dotted, bindings)
