"""Runtime determinism sanitizer: run twice, bisect the first divergence.

The static rules (``DET001``/``DET101``/``DET002``) prove seed lineage
and clock discipline *about the source*; this module checks the same
property *about a run*.  ``sanitize_experiment`` executes a registered
experiment twice under identical instrumentation and compares the two
recorded event streams record-for-record:

1. **Warm-up.**  One uncounted run fills the on-disk artifact cache
   (surveys, trained models), so run A filling the cache and run B
   reading it back cannot masquerade as nondeterminism.  The
   ``functools.lru_cache`` memos on the experiment *results* are then
   cleared before each recorded run — otherwise the second run would
   return the memoized object without executing anything.
2. **Scripted clocks.**  Both recorded runs execute under
   :func:`repro.obs.clock.override` with *ramp* clocks — each read
   returns the previous value plus a fixed tick.  Timestamps therefore
   encode the clock-read *count*, so a scheme that consults the clock a
   different number of times on the second run shows up as a diverging
   ``time_s`` even though real time never leaks in.
3. **RNG construction recording.**  ``numpy.random.default_rng`` is
   wrapped so every generator construction appends an ``rng`` record
   (with a stable repr of its seed argument) to the stream.  A walk
   that seeds differently between runs diverges at the exact
   construction, not at some downstream metric.
4. **Normalization.**  Fields that are honestly nondeterministic and
   allowlisted as such — ``run_id``, span ``duration_ms``, and
   ``_ms``/``_s``-suffixed metric values measured by the raw
   ``perf_counter``-based obs timers — are scrubbed before comparison.
5. **Bisection.**  :func:`first_divergence` binary-searches cumulative
   prefix hashes of the two streams for the first index where they
   disagree, and the report localizes that record to its job, worker,
   and walk seed with surrounding context.

Exit semantics are wired in :mod:`repro.cli` (``repro sanitize``):
0 = streams identical, 1 = divergence found, 2 = usage error.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.formats import check_header, format_header

#: On-disk version of the ``sanitize_report`` artifact.
SANITIZE_REPORT_VERSION = 1

#: Epoch base for the scripted wall clock: far enough from zero that
#: file-age arithmetic stays positive, stable so reports are comparable.
WALL_BASE_S = 1_600_000_000.0

#: Seconds added per scripted clock read.  Coarse enough to survive
#: float rounding at WALL_BASE_S, fine enough to order dense events.
CLOCK_TICK_S = 1e-3

#: Keys scrubbed from every event before hashing (allowlisted
#: nondeterminism: ids and raw-perf_counter durations).
_SCRUBBED_KEYS = frozenset({"run_id", "duration_ms"})

#: Metric-name suffixes whose values come from the un-instrumented
#: obs timers and are therefore scrubbed, not compared.
_TIMING_SUFFIXES = ("_ms", "_s")


def _ramp(start: float, tick: float = CLOCK_TICK_S) -> Callable[[], float]:
    """Return a scripted clock: each call advances by ``tick``."""
    state = {"now": start}

    def read() -> float:
        state["now"] += tick
        return state["now"]

    return read


def _stable_seed_repr(value: Any) -> str:
    """Render an RNG seed argument deterministically (and compactly)."""
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            return f"ndarray{value.shape}:{value.tolist()!r}"
        if isinstance(value, np.generic):
            return repr(value.item())
    except Exception:  # pragma: no cover - numpy always importable here
        pass
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_stable_seed_repr(v) for v in value)
        return f"({inner})" if isinstance(value, tuple) else f"[{inner}]"
    return repr(value)


class _RngRecorder:
    """Wrap ``numpy.random.default_rng`` and log every construction."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self._original: Any = None

    def __enter__(self) -> _RngRecorder:
        import numpy as np

        self._original = np.random.default_rng
        original = self._original
        records = self.records

        def recording_default_rng(seed: Any = None) -> Any:
            records.append(
                {
                    "type": "rng",
                    "kind": "rng",
                    "name": "numpy.random.default_rng",
                    "seed": _stable_seed_repr(seed),
                    "index": len(records),
                }
            )
            return original(seed)

        np.random.default_rng = recording_default_rng  # type: ignore[assignment]
        return self

    def __exit__(self, *exc: object) -> None:
        import numpy as np

        np.random.default_rng = self._original  # type: ignore[assignment]


def normalize_event(event: dict[str, Any]) -> dict[str, Any]:
    """Return a comparison-safe copy of one telemetry event.

    Drops :data:`_SCRUBBED_KEYS` at the top level and inside ``data``,
    and replaces the values of ``_ms``/``_s``-suffixed metrics — the
    obs timers read ``perf_counter`` directly (allowlisted by DET002),
    so their magnitudes are honest noise, though their *presence* and
    order still must match.
    """
    out = {k: v for k, v in event.items() if k not in _SCRUBBED_KEYS}
    data = out.get("data")
    if isinstance(data, dict):
        data = {k: v for k, v in data.items() if k not in _SCRUBBED_KEYS}
        if event.get("kind") == "metric" and str(
            data.get("metric", event.get("name", ""))
        ).endswith(_TIMING_SUFFIXES):
            for key in ("value", "sum", "values", "delta"):
                if key in data:
                    data[key] = "<timing>"
        out["data"] = data
    return out


def _record_hash(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).digest()


def first_divergence(
    a: list[dict[str, Any]], b: list[dict[str, Any]]
) -> int | None:
    """Return the index of the first differing record, or ``None``.

    Binary-searches cumulative prefix hashes rather than scanning:
    ``prefix[i]`` chains the hashes of records ``0..i``, so the
    predicate "prefixes of length *i* agree" is monotone and
    :func:`bisect.bisect_left` lands on the first disagreement.  A pure
    length difference (one stream is a prefix of the other) diverges at
    ``min(len(a), len(b))``.
    """

    def prefixes(stream: list[dict[str, Any]]) -> list[bytes]:
        acc = b""
        out = []
        for record in stream:
            acc = hashlib.sha256(acc + _record_hash(record)).digest()
            out.append(acc)
        return out

    pa, pb = prefixes(a), prefixes(b)
    n = min(len(pa), len(pb))
    # bisect over the monotone predicate: key(i) = 1 once prefixes differ.
    split = bisect_left(range(n), 1, key=lambda i: int(pa[i] != pb[i]))
    if split < n:
        return split
    if len(a) != len(b):
        return n
    return None


@dataclass(frozen=True)
class Divergence:
    """The first diverging record, localized to its execution context."""

    index: int
    record_a: dict[str, Any] | None
    record_b: dict[str, Any] | None
    job_id: str
    worker_id: str
    walk_seed: int | None
    context: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "record_a": self.record_a,
            "record_b": self.record_b,
            "job_id": self.job_id,
            "worker_id": self.worker_id,
            "walk_seed": self.walk_seed,
            "context": list(self.context),
        }


@dataclass(frozen=True)
class SanitizeReport:
    """Outcome of one double-run determinism check."""

    experiment: str
    seed: int | None
    n_records: tuple[int, int]
    n_rng_constructions: tuple[int, int]
    divergence: Divergence | None

    @property
    def clean(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            **format_header("sanitize_report", SANITIZE_REPORT_VERSION),
            "experiment": self.experiment,
            "seed": self.seed,
            "records": list(self.n_records),
            "rng_constructions": list(self.n_rng_constructions),
            "clean": self.clean,
        }
        payload["divergence"] = (
            self.divergence.to_dict() if self.divergence else None
        )
        return payload

    def render(self) -> str:
        lines = [
            f"sanitize {self.experiment}"
            + (f" --seed {self.seed}" if self.seed is not None else ""),
            f"  run A: {self.n_records[0]} record(s), "
            f"{self.n_rng_constructions[0]} rng construction(s)",
            f"  run B: {self.n_records[1]} record(s), "
            f"{self.n_rng_constructions[1]} rng construction(s)",
        ]
        if self.clean:
            lines.append("  verdict: DETERMINISTIC (streams identical)")
            return "\n".join(lines)
        div = self.divergence
        assert div is not None
        where = f"record #{div.index}"
        if div.job_id:
            where += f", job {div.job_id}"
        if div.worker_id:
            where += f", worker {div.worker_id}"
        if div.walk_seed is not None:
            where += f", walk_seed {div.walk_seed}"
        lines.append(f"  verdict: DIVERGED at {where}")
        for label, record in (("A", div.record_a), ("B", div.record_b)):
            rendered = (
                json.dumps(record, sort_keys=True, default=repr)
                if record is not None
                else "<stream ended>"
            )
            lines.append(f"    run {label}: {rendered}")
        if div.context:
            lines.append("  preceding events:")
            lines.extend(f"    {line}" for line in div.context)
        return "\n".join(lines)


def load_sanitize_report(path: str | Path) -> dict[str, Any]:
    """Read a saved sanitize report, validating the format header.

    Raises:
        UnsupportedFormatError: wrong ``format``/``version`` header.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    check_header(payload, "sanitize_report", SANITIZE_REPORT_VERSION, path)
    return payload


def _describe(record: dict[str, Any]) -> str:
    kind = record.get("kind", "?")
    name = record.get("name", "?")
    bits = [f"{kind}:{name}"]
    if record.get("job_id"):
        bits.append(str(record["job_id"]))
    if record.get("walk_seed") is not None:
        bits.append(f"walk_seed={record['walk_seed']}")
    return " ".join(bits)


def _localize(
    index: int, a: list[dict[str, Any]], b: list[dict[str, Any]]
) -> Divergence:
    record_a = a[index] if index < len(a) else None
    record_b = b[index] if index < len(b) else None
    anchor = record_a or record_b or {}
    job_id = str(anchor.get("job_id", ""))
    worker_id = str(anchor.get("worker_id", ""))
    walk_seed = anchor.get("walk_seed")
    # Walk back through run A for the nearest records that name a job:
    # those are the step/scheme context the diverging record executed in.
    context = [
        _describe(a[i]) for i in range(max(0, index - 3), min(index, len(a)))
    ]
    if not job_id:
        for i in range(min(index, len(a)) - 1, -1, -1):
            if a[i].get("job_id"):
                job_id = str(a[i]["job_id"])
                worker_id = worker_id or str(a[i].get("worker_id", ""))
                if walk_seed is None:
                    walk_seed = a[i].get("walk_seed")
                break
    return Divergence(
        index=index,
        record_a=record_a,
        record_b=record_b,
        job_id=job_id,
        worker_id=worker_id,
        walk_seed=walk_seed if isinstance(walk_seed, int) else None,
        context=context,
    )


def _clear_result_memos() -> None:
    """Drop the experiment-level ``lru_cache`` memos (results, tables).

    Without this, the warmed-up recorded runs would both return the
    memoized result object and record zero events — a vacuously clean
    report.  The pure scalar memos in :mod:`repro.radio.kernels` are
    left warm: they construct no RNGs, read no clocks, and emit no
    telemetry, so their temperature cannot alter the stream.
    """
    from repro.eval import experiments

    for value in vars(experiments).values():
        cache_clear = getattr(value, "cache_clear", None)
        if callable(cache_clear):
            cache_clear()


def _recorded_run(
    name: str,
    run_label: str,
    log_path: Path,
    runner: Callable[..., Any],
    **overrides: Any,
) -> list[dict[str, Any]]:
    """Execute one instrumented run; return its normalized record stream."""
    from repro.obs import clock
    from repro.obs.telemetry import read_telemetry, telemetry_session

    with _RngRecorder() as rng:
        with clock.override(
            wall=_ramp(WALL_BASE_S), monotonic=_ramp(0.0)
        ):
            with telemetry_session(
                log_path, run_id=f"sanitize-{run_label}", experiment=name
            ):
                runner(name, **overrides)
    _, events = read_telemetry(log_path)
    stream = [normalize_event(event) for event in events]
    # RNG records follow the telemetry block; each sub-stream is in
    # program order, so any cross-run difference still lands on the
    # first genuinely differing record within its sub-stream.
    stream.extend(rng.records)
    return stream


def sanitize_experiment(
    name: str,
    seed: int | None = None,
    n_walks: int | None = None,
    out_dir: str | Path | None = None,
    runner: Callable[..., Any] | None = None,
    warmup: bool = True,
) -> SanitizeReport:
    """Run ``name`` twice under instrumentation and diff the streams.

    Args:
        name: registered experiment name (``repro run --list``).
        seed: master-seed override forwarded to the runner.
        n_walks: walk-count override forwarded to the runner.
        out_dir: where the two telemetry logs land (default: a
            ``.repro-cache/sanitize`` directory next to the cwd).
        runner: the experiment runner; injectable for tests.  Defaults
            to :func:`repro.eval.registry.run_experiment`.  Always
            invoked with ``workers=1`` — the sanitizer certifies the
            serial stream; serial/parallel equivalence has its own
            tests.
        warmup: run once uncounted first (fills the disk artifact
            cache) and clear the experiment-result memos before each
            recorded run.  Disable for injected test runners that have
            neither caches nor memos.

    Returns:
        A :class:`SanitizeReport`; ``report.clean`` is the verdict.
    """
    if runner is None:
        from repro.eval.registry import run_experiment

        runner = run_experiment
    overrides: dict[str, Any] = {"workers": 1}
    if seed is not None:
        overrides["seed"] = seed
    if n_walks is not None:
        overrides["n_walks"] = n_walks

    root = Path(out_dir) if out_dir else Path(".repro-cache") / "sanitize"
    root.mkdir(parents=True, exist_ok=True)

    if warmup:
        runner(name, **overrides)

    streams: list[list[dict[str, Any]]] = []
    for label in ("a", "b"):
        if warmup:
            _clear_result_memos()
        log_path = root / f"{name}-{label}.telemetry.jsonl"
        streams.append(
            _recorded_run(name, label, log_path, runner, **overrides)
        )
    stream_a, stream_b = streams

    def rng_count(stream: list[dict[str, Any]]) -> int:
        return sum(1 for r in stream if r.get("type") == "rng")

    index = first_divergence(stream_a, stream_b)
    divergence = (
        _localize(index, stream_a, stream_b) if index is not None else None
    )
    return SanitizeReport(
        experiment=name,
        seed=seed,
        n_records=(len(stream_a), len(stream_b)),
        n_rng_constructions=(rng_count(stream_a), rng_count(stream_b)),
        divergence=divergence,
    )
