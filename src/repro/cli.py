"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

``places``
    List the built-in worlds and their paths.
``train [--out models.json]``
    Run the one-time error-model training (§III) and optionally save
    the fitted models.
``run EXPERIMENT | run PLACE PATH``
    Either reproduce a registered paper artifact by name (``repro run
    fig7 --workers 4``; ``repro run --list`` shows the registry), or
    walk one path with UniLoc and print per-system error statistics,
    the scheme-usage bars, and a CDF plot.
``cache ls|clear|warm|key``
    Manage the persistent artifact cache (surveys, trained models)
    that the experiment engine reads; see README "Parallel execution
    & caching".
``survey PLACE --out prints.json``
    Deploy a place and dump its Wi-Fi fingerprint survey.
``record PLACE PATH --out trace.json``
    Record a raw sensor trace for offline experimentation.
``tables``
    Regenerate the paper's energy and response-time tables.
``trace PLACE PATH --out steps.jsonl``
    Walk a path with full step tracing on and export the JSONL
    decision telemetry stream (see README "Observability").
``report TRACE``
    Aggregate a JSONL step trace into per-scheme usage, availability,
    latency percentiles, duty-cycle stats, and (for metered traces)
    I/O counters.  One of three post-run analysis paths — see also
    ``telemetry`` for fleet event streams and ``bench trend`` for
    performance history.
``telemetry tail|summary|export``
    Inspect a fleet telemetry event log: ``tail`` prints recent events
    (or follows a live run with ``--follow``), ``summary`` renders
    per-place and per-scheme rollups, ``export`` serializes the merged
    metrics as Prometheus text or JSONL (see README "Observability").
``profile EXPERIMENT``
    Run a registered experiment under the deterministic sampling
    profiler and print the hot-function table; ``--out`` writes
    collapsed stacks for flamegraph renderers.
``chaos [--kind crash] [--workers N] [--strict]``
    Run the fault-matrix resilience experiment: one clean baseline walk
    plus one walk per scheme with that scheme at 100% failure, printing
    whether UniLoc2 still beats the best surviving single scheme (see
    README "Fault injection & resilience").
``lint [paths] [--rule ID] [--format text|json|sarif] [--baseline [FILE]]``
    Run the repo-specific static-analysis rules over the tree: the
    syntactic set (unseeded randomness, wall-clock reads,
    process-boundary purity, metric-name integrity, unit suffixes)
    plus the dataflow-aware set (DET101 seed lineage, PUR101 escape
    analysis, SHP001 shape contracts).  Exits 1 on any error-tier
    finding; ``--format sarif`` targets GitHub code scanning (see
    README "Static analysis").
``sanitize EXPERIMENT [--n-walks N] [--json]``
    Runtime determinism check: run a registered experiment twice under
    scripted clocks and a recording RNG constructor, then bisect the
    two telemetry streams for the first diverging event; exits 1 on
    divergence with the break localized to job/worker/walk seed.
``bench run|compare|trend``
    ``bench run`` times the radio kernels against their scalar
    baselines on one place and writes a versioned ``BENCH_<date>.json``
    report; ``bench compare BASELINE CURRENT`` diffs two reports and
    exits 1 when a speedup regressed past the threshold; ``bench trend
    FILES...`` computes per-benchmark speedup trajectories across a
    whole report history and flags best-ever regressions (see README
    "Performance").

``run PLACE PATH`` also accepts ``--trace PATH`` to export the
step-telemetry stream while printing its usual evaluation, and ``run
EXPERIMENT --telemetry LOG`` streams the fleet's live event log
(job/span/fault/metric events with correlated run/job/worker IDs) to
``LOG`` while the experiment runs.  Offline
artifacts come from the fleet cache: set ``REPRO_CACHE_DIR`` (or pass
``--cache-dir``) and repeated invocations skip training and surveying.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _builders():
    from repro.fleet import place_builders

    return place_builders()


def _cache(args: argparse.Namespace):
    """Return the cache the command should use (honoring ``--cache-dir``)."""
    from repro.fleet import ArtifactCache, default_cache

    root = getattr(args, "cache_dir", None)
    if root:
        return ArtifactCache(root)
    return default_cache()


def cmd_places(_: argparse.Namespace) -> int:
    """List built-in places and their paths."""
    for name, build in _builders().items():
        place = build()
        paths = ", ".join(
            f"{p.name} ({p.length():.0f} m)" for p in place.paths.values()
        )
        print(f"{name:18s} {paths}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train the error models and optionally persist them."""
    models = _cache(args).error_models(args.seed)
    for name, model_set in models.items():
        for label, model in (
            ("indoor", model_set.indoor),
            ("outdoor", model_set.outdoor),
        ):
            if model.is_fitted:
                s = model.summary
                betas = ", ".join(f"{b:+.3f}" for b in s.coefficients)
                print(
                    f"{name:9s} {label:8s} beta=[{betas}] "
                    f"sigma_e={s.residual_std:.2f} R2={s.r_squared:.2f} n={s.n_samples}"
                )
    if args.out:
        from repro.persistence import save_error_models

        save_error_models(models, args.out)
        print(f"\nsaved to {args.out}")
    return 0


def _prepare_run(args: argparse.Namespace, metrics=None):
    """Shared setup for the walk-driving commands (``run``/``trace``).

    Returns ``(setup, framework, walk, snaps)`` or an exit code on a
    bad place/path.  When ``metrics`` is given it is attached to the
    cache for the duration of the setup, so artifact I/O during model
    loading and surveying is metered into it.
    """
    from repro.eval import build_framework

    cache = _cache(args)
    previous_metrics = cache.metrics
    if metrics is not None:
        cache.metrics = metrics
    try:
        if args.place not in _builders():
            print(
                f"unknown place {args.place!r}; see `repro places`",
                file=sys.stderr,
            )
            return 2
        if args.models:
            from repro.persistence import load_error_models

            models = load_error_models(args.models)
        else:
            models = cache.error_models(args.seed)
        setup = cache.place_setup(args.place, args.seed + 3)
        if args.path not in setup.place.paths:
            print(
                f"unknown path {args.path!r}; this place has: "
                + ", ".join(setup.place.paths),
                file=sys.stderr,
            )
            return 2
        walk, snaps = setup.record_walk(
            args.path, walk_seed=args.seed, trace_seed=args.seed + 1
        )
        framework = build_framework(setup, models, walk.moments[0].position)
        return setup, framework, walk, snaps
    finally:
        if metrics is not None:
            cache.metrics = previous_metrics


def _open_trace(args: argparse.Namespace, out_path: str, metrics=None):
    """Open the JSONL trace sink *before* the expensive setup.

    Model training takes minutes; a typo'd output path should fail in
    milliseconds, not after the walk.  Returns a ``TraceWriter`` or an
    exit code.
    """
    from repro.obs import TraceWriter

    try:
        return TraceWriter(
            out_path, place=args.place, path_name=args.path, metrics=metrics
        )
    except OSError as exc:
        print(f"cannot write trace: {exc}", file=sys.stderr)
        return 2


def _discard_trace(tw, out_path: str) -> None:
    """Remove a trace stub left behind by a failed setup."""
    tw.close()
    try:
        os.unlink(out_path)
    except OSError:
        pass


def _run_experiment(args: argparse.Namespace) -> int:
    """Dispatch ``repro run <experiment>`` through the registry."""
    from repro.eval.registry import get_experiment, render_result, run_experiment
    from repro.fleet import set_default_cache

    if args.cache_dir:
        set_default_cache(_cache(args))
    experiment = get_experiment(args.place)
    telemetry_log = getattr(args, "telemetry", None)
    if telemetry_log:
        from repro.obs.telemetry import telemetry_session

        with telemetry_session(telemetry_log, experiment=args.place) as session:
            session.emitter().emit(
                "log", "experiment", message=experiment.title
            )
            result = run_experiment(
                args.place,
                seed=args.seed if args.seed != 0 else None,
                n_walks=args.n_walks,
                workers=args.workers,
            )
        print(
            f"wrote {session.writer.n_events} telemetry events "
            f"to {telemetry_log}\n"
        )
    else:
        result = run_experiment(
            args.place,
            seed=args.seed if args.seed != 0 else None,
            n_walks=args.n_walks,
            workers=args.workers,
        )
    print(f"{experiment.name}: {experiment.title}\n")
    print(render_result(experiment, result))
    return 0


def _list_experiments() -> int:
    from repro.eval.registry import EXPERIMENTS

    for experiment in EXPERIMENTS.values():
        print(f"{experiment.name:8s} {experiment.title}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a registered experiment, or UniLoc over one place/path."""
    from repro.eval.registry import EXPERIMENTS

    if args.list:
        return _list_experiments()
    if args.place is None:
        print("run needs an experiment name or PLACE PATH", file=sys.stderr)
        return 2
    if args.path is None:
        if args.place in EXPERIMENTS:
            if args.trace is not None:
                print(
                    "--trace only applies to `run PLACE PATH`", file=sys.stderr
                )
                return 2
            return _run_experiment(args)
    if args.path is not None and args.telemetry is not None:
        print(
            "--telemetry only applies to experiment runs "
            "(`repro run <experiment>`)",
            file=sys.stderr,
        )
        return 2
    if args.path is None:
        print(
            f"{args.place!r} is neither a registered experiment "
            f"(see `repro run --list`) nor was a PATH given",
            file=sys.stderr,
        )
        return 2

    from repro.eval import SCHEME_NAMES, run_walk
    from repro.eval.plots import render_bars, render_cdf

    tw = None
    if args.trace is not None:
        tw = _open_trace(args, args.trace)
        if isinstance(tw, int):
            return tw
    prepared = _prepare_run(args)
    if isinstance(prepared, int):
        if tw is not None:
            _discard_trace(tw, args.trace)
        return prepared
    setup, framework, walk, snaps = prepared
    if tw is not None:
        from repro.obs import Tracer

        framework.tracer = Tracer()
        with tw:
            result = run_walk(framework, setup.place, args.path, walk, snaps, trace=tw)
        print(f"wrote {tw.n_steps} step events to {args.trace}")
    else:
        result = run_walk(framework, setup.place, args.path, walk, snaps)

    print(f"\n{args.place}/{args.path}: {len(result.records)} estimates\n")
    errors_by_system = {}
    for estimator in list(SCHEME_NAMES) + ["optsel", "uniloc1", "uniloc2"]:
        errors = result.errors(estimator)
        if errors:
            errors_by_system[estimator] = errors
            print(
                f"  {estimator:9s} mean {np.mean(errors):6.2f} m   "
                f"p50 {np.percentile(errors, 50):6.2f} m   "
                f"p90 {np.percentile(errors, 90):6.2f} m"
            )
    print("\nUniLoc1 scheme usage:")
    print(render_bars(result.usage("uniloc1")))
    print("\n" + render_cdf(errors_by_system))
    return 0


def _cache_root(args: argparse.Namespace) -> str:
    return args.dir or os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"


def cmd_cache(args: argparse.Namespace) -> int:
    """Manage the persistent artifact cache."""
    from repro.fleet import ArtifactCache, config_hash, place_names

    if args.cache_command == "key":
        print(config_hash())
        return 0

    cache = ArtifactCache(_cache_root(args))
    if args.cache_command == "ls":
        entries = cache.entries()
        if not entries:
            print(f"cache at {cache.root} is empty")
            return 0
        for entry in entries:
            print(entry.describe())
        total = sum(e.size_bytes for e in entries)
        print(f"\n{len(entries)} entries, {total / 1024:.1f} KiB in {cache.root}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear(args.artifact)
        print(f"removed {removed} entries from {cache.root}")
        return 0
    if args.cache_command == "warm":
        places = args.places or None
        unknown = [p for p in (places or []) if p not in place_names()]
        if unknown:
            print(f"unknown places: {', '.join(unknown)}", file=sys.stderr)
            return 2
        warmed = cache.warm(places=places, seed=args.seed)
        for key in warmed:
            print(f"warm: {key}")
        print(f"\n{len(warmed)} artifacts ready in {cache.root}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def cmd_survey(args: argparse.Namespace) -> int:
    """Dump a place's Wi-Fi fingerprint survey to JSON."""
    from repro.eval import PlaceSetup
    from repro.persistence import save_fingerprints

    builders = _builders()
    if args.place not in builders:
        print(f"unknown place {args.place!r}", file=sys.stderr)
        return 2
    setup = PlaceSetup.create(builders[args.place](), seed=args.seed + 3)
    save_fingerprints(setup.wifi_db, args.out)
    print(f"saved {len(setup.wifi_db)} fingerprints to {args.out}")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    """Record one walk's raw sensor trace to JSON."""
    from repro.eval import PlaceSetup
    from repro.persistence import save_trace

    builders = _builders()
    if args.place not in builders:
        print(f"unknown place {args.place!r}", file=sys.stderr)
        return 2
    setup = PlaceSetup.create(builders[args.place](), seed=args.seed + 3)
    if args.path not in setup.place.paths:
        print(f"unknown path {args.path!r}", file=sys.stderr)
        return 2
    _, snaps = setup.record_walk(
        args.path, walk_seed=args.seed, trace_seed=args.seed + 1
    )
    save_trace(snaps, args.out)
    print(f"saved {len(snaps)} snapshots to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Walk a path with tracing enabled and export the JSONL telemetry."""
    from repro.eval import run_walk
    from repro.obs import MetricsRegistry, Tracer

    registry = MetricsRegistry()
    tw = _open_trace(args, args.out, metrics=registry)
    if isinstance(tw, int):
        return tw
    prepared = _prepare_run(args, metrics=registry)
    if isinstance(prepared, int):
        _discard_trace(tw, args.out)
        return prepared
    setup, framework, walk, snaps = prepared
    framework.tracer = Tracer()
    framework.metrics = registry
    with tw:
        run_walk(framework, setup.place, args.path, walk, snaps, trace=tw)
    print(f"wrote {tw.n_steps} step events to {args.out}\n")
    print(framework.metrics.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate a JSONL step trace into a summary table.

    ``repro report`` is the trace-aggregation view; live fleet runs are
    inspected with ``repro telemetry`` instead.
    """
    from repro.obs import iter_trace, render_report, summarize_trace

    steps = []
    metrics_payload: dict = {}
    try:
        stream = iter_trace(args.trace)
        meta = next(stream)
        for event in stream:
            if event.get("type") == "step":
                steps.append(event)
            elif event.get("type") == "metrics":
                metrics_payload = event.get("metrics", {})
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(render_report(summarize_trace(meta, steps, metrics=metrics_payload)))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the single-scheme-outage resilience matrix and report it."""
    import json

    from repro.faults.chaos import chaos_matrix
    from repro.fleet import set_default_cache
    from repro.obs import MetricsRegistry

    if args.cache_dir:
        set_default_cache(_cache(args))
    metrics = MetricsRegistry()
    telemetry_note = None
    try:
        if args.telemetry:
            from repro.obs.telemetry import telemetry_session

            with telemetry_session(
                args.telemetry, experiment=f"chaos-{args.kind}"
            ) as session:
                rows = chaos_matrix(
                    seed=args.seed,
                    workers=args.workers,
                    place_name=args.place,
                    path_name=args.path,
                    kind=args.kind,
                    metrics=metrics,
                )
            telemetry_note = (
                f"wrote {session.writer.n_events} telemetry events "
                f"to {args.telemetry}"
            )
        else:
            rows = chaos_matrix(
                seed=args.seed,
                workers=args.workers,
                place_name=args.place,
                path_name=args.path,
                kind=args.kind,
                metrics=metrics,
            )
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    if telemetry_note and not args.json:
        # Kept out of --json mode so stdout stays parseable.
        print(telemetry_note + "\n")

    if args.json:
        from dataclasses import asdict

        print(json.dumps({k: asdict(v) for k, v in rows.items()}, indent=2))
    else:
        print(
            f"chaos matrix: {args.place}/{args.path}, "
            f"fault kind {args.kind!r}, seed {args.seed}\n"
        )
        for name, row in rows.items():
            print(f"  {name:9s} {row.describe()}")
        fault_lines = [
            f"  {name:40s} {metric.value}"
            for name, metric in sorted(metrics)
            if name.startswith(("uniloc.faults.", "uniloc.quarantine."))
        ]
        if fault_lines:
            print("\nfault telemetry:")
            print("\n".join(fault_lines))

    degraded = [r for r in rows.values() if r.outage != "none"]
    losses = [r for r in degraded if not r.survived or r.margin <= 0]
    if losses:
        print(
            "\nresilience violated: "
            + ", ".join(r.outage for r in losses),
            file=sys.stderr,
        )
    if args.strict and losses:
        return 1
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Inspect a fleet telemetry event log (tail/summary/export)."""
    from repro.obs.telemetry import (
        follow_telemetry,
        format_event,
        read_telemetry,
        registry_from_events,
        render_telemetry_summary,
        summarize_telemetry,
    )

    if args.telemetry_command == "tail":
        try:
            if args.follow:
                for event in follow_telemetry(args.log, poll_s=args.poll_s):
                    print(format_event(event), flush=True)
                return 0
            meta, events = read_telemetry(args.log)
        except (OSError, ValueError) as exc:
            print(f"cannot read telemetry log: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            return 0
        print(format_event(meta))
        shown = events[-args.last :] if args.last > 0 else events
        for event in shown:
            print(format_event(event))
        return 0
    try:
        meta, events = read_telemetry(args.log)
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry log: {exc}", file=sys.stderr)
        return 2
    if args.telemetry_command == "summary":
        print(render_telemetry_summary(summarize_telemetry(meta, events)))
        return 0
    if args.telemetry_command == "export":
        from pathlib import Path

        from repro.obs.exporters import get_exporter

        registry = registry_from_events(events)
        text = get_exporter(args.format).export(registry)
        if args.out:
            Path(args.out).write_text(text)
            print(f"wrote {args.format} metrics to {args.out}")
        else:
            print(text, end="")
        return 0
    raise AssertionError(
        f"unhandled telemetry command {args.telemetry_command!r}"
    )


def cmd_profile(args: argparse.Namespace) -> int:
    """Run an experiment under the sampling profiler."""
    from pathlib import Path

    from repro.eval.registry import EXPERIMENTS, get_experiment, run_experiment
    from repro.fleet import set_default_cache
    from repro.obs.profiler import SamplingProfiler

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"see `repro run --list`",
            file=sys.stderr,
        )
        return 2
    if args.cache_dir:
        set_default_cache(_cache(args))
    experiment = get_experiment(args.experiment)
    profiler = SamplingProfiler(interval_s=args.interval_ms / 1e3)
    with profiler:
        run_experiment(
            args.experiment,
            seed=args.seed if args.seed != 0 else None,
            n_walks=args.n_walks,
            workers=args.workers,
        )
    print(f"{experiment.name}: {experiment.title}\n")
    print(profiler.render_table(args.top))
    if args.out:
        Path(args.out).write_text(profiler.collapsed())
        print(f"\nwrote collapsed stacks to {args.out}")
    return 0


#: Where ``repro lint`` looks for a baseline when ``--baseline`` is
#: given without a path, and where ``--write-baseline`` writes one.
DEFAULT_BASELINE = "lint-baseline.json"

#: Default per-file result cache (keyed on content + rule versions).
DEFAULT_LINT_CACHE = ".repro-cache/lint-cache.json"


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis rules; exit 1 on error-tier findings."""
    import json

    from repro.analysis import LintEngine, default_rules, load_baseline, write_baseline

    rules = default_rules()
    if args.rule:
        wanted = {rule_id.upper() for rule_id in args.rule}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    baseline: frozenset[str] = frozenset()
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline: {exc}", file=sys.stderr)
            return 2

    engine = LintEngine(
        rules=rules,
        cache_path=None if args.no_cache else args.cache_path,
        baseline=baseline,
    )
    try:
        report = engine.lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        n = write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote baseline with {n} fingerprint(s) to {args.write_baseline}"
        )
        return 0
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    elif fmt == "sarif":
        from repro.analysis.sarif import to_sarif

        print(json.dumps(to_sarif(report, rules), indent=1, sort_keys=True))
    else:
        print(report.render())
    return 1 if report.n_errors else 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run the determinism sanitizer; exit 1 when the runs diverge."""
    import json

    from repro.analysis.sanitizer import sanitize_experiment
    from repro.eval.registry import experiment_names

    if args.experiment not in experiment_names():
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(experiment_names())}",
            file=sys.stderr,
        )
        return 2
    report = sanitize_experiment(
        args.experiment,
        seed=args.seed,
        n_walks=args.n_walks,
        out_dir=args.out_dir,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the kernel microbenches, or compare two BENCH reports."""
    from repro.bench import compare_reports, load_report, run_benches
    from repro.bench.runner import default_bench_filename
    from repro.formats import UnsupportedFormatError

    if args.bench_command == "run":
        report = run_benches(
            place_name=args.place,
            seed=args.seed,
            repeats=args.repeats,
            include_walk_step=not args.no_walk_step,
            cache=_cache(args),
        )
        print(report.render())
        out = args.out or default_bench_filename(report.created_at)
        report.save(out)
        print(f"\nwrote {out}")
        return 0
    if args.bench_command == "compare":
        try:
            baseline = load_report(args.baseline)
            current = load_report(args.current)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read bench report: {exc}", file=sys.stderr)
            return 2
        try:
            regressions = compare_reports(
                baseline, current, threshold=args.threshold, metric=args.metric
            )
        except UnsupportedFormatError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        print(
            f"baseline: {args.baseline} (place={baseline.place}, "
            f"seed={baseline.seed})"
        )
        print(
            f"current:  {args.current} (place={current.place}, "
            f"seed={current.seed})"
        )
        base_speedups, cur_speedups = baseline.speedups(), current.speedups()
        for bench in sorted(base_speedups.keys() | cur_speedups.keys()):
            print(
                f"  {bench:28s} baseline "
                f"{base_speedups.get(bench, float('nan')):8.1f}x   current "
                f"{cur_speedups.get(bench, float('nan')):8.1f}x"
            )
        if regressions:
            print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nno regressions (threshold {args.threshold:.0%}, {args.metric})")
        return 0
    if args.bench_command == "trend":
        from pathlib import Path

        from repro.bench.trend import (
            compute_trends,
            flag_regressions,
            load_history,
            render_csv,
            render_markdown,
        )

        history, skipped = load_history(args.reports)
        for note in skipped:
            print(f"trend: skipping {note}", file=sys.stderr)
        if not history:
            print("no readable bench reports", file=sys.stderr)
            return 2
        trends = compute_trends(history)
        if args.format == "markdown":
            text = render_markdown(
                trends, threshold=args.threshold, skipped=skipped
            )
        else:
            text = render_csv(trends)
        if args.out:
            Path(args.out).write_text(text)
            print(f"wrote trend report to {args.out}")
        else:
            print(text, end="")
        regressions = flag_regressions(trends, args.threshold)
        if regressions and args.strict:
            return 1
        return 0
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


def cmd_tables(_: argparse.Namespace) -> int:
    """Print the modeled Table IV / Table V constants."""
    from repro.energy import response_time, scheme_energy

    print("Energy per system (230 s walk, 460 estimates):")
    for name in ("gps", "wifi", "cellular", "motion", "fusion", "uniloc"):
        report = scheme_energy(name, 230.0, 460, gps_duty=0.0)
        print(f"  {name:9s} {report.power_mw:6.0f} mW  {report.energy_j:7.1f} J")
    bt = response_time()
    print(
        f"\nResponse time: {bt.total_ms:.1f} ms total, "
        f"{bt.transmission_fraction:.0%} transmissions, "
        f"UniLoc adds {bt.uniloc_added_ms:.1f} ms"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="UniLoc reproduction command line"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("places", help="list built-in worlds").set_defaults(func=cmd_places)

    p_train = sub.add_parser("train", help="train the error models")
    p_train.add_argument("--out", help="save fitted models to this JSON file")
    p_train.add_argument("--cache-dir", help="persistent artifact cache directory")
    p_train.set_defaults(func=cmd_train)

    p_run = sub.add_parser(
        "run", help="run a registered experiment, or UniLoc over a path"
    )
    p_run.add_argument(
        "place", nargs="?", help="experiment name (see --list) or place"
    )
    p_run.add_argument("path", nargs="?", help="path within the place")
    p_run.add_argument(
        "--list", action="store_true", help="list registered experiments"
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for multi-walk experiments",
    )
    p_run.add_argument(
        "--n-walks", type=int, default=None, help="walks to pool (pooled experiments)"
    )
    p_run.add_argument("--cache-dir", help="persistent artifact cache directory")
    p_run.add_argument("--models", help="load fitted models instead of training")
    p_run.add_argument(
        "--trace", help="also export the JSONL step-telemetry stream here"
    )
    p_run.add_argument(
        "--telemetry",
        metavar="LOG",
        help="stream the merged fleet telemetry event log here "
        "(experiment runs only)",
    )
    p_run.set_defaults(func=cmd_run)

    p_cache = sub.add_parser("cache", help="manage the persistent artifact cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_ls = cache_sub.add_parser("ls", help="list cache entries")
    p_ls.add_argument(
        "--dir", help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)"
    )
    p_clear = cache_sub.add_parser("clear", help="delete cache entries")
    p_clear.add_argument("--dir", help="cache directory")
    p_clear.add_argument(
        "--artifact", choices=["error_models", "place_setup"],
        help="only clear one artifact kind",
    )
    p_warm = cache_sub.add_parser(
        "warm", help="pre-build every artifact the experiments need"
    )
    p_warm.add_argument("--dir", help="cache directory")
    p_warm.add_argument(
        "--places", nargs="*", help="only warm these places (default: all)"
    )
    cache_sub.add_parser(
        "key", help="print the config hash cache entries are keyed on"
    )
    p_cache.set_defaults(func=cmd_cache)

    p_trace = sub.add_parser(
        "trace", help="walk a path and export JSONL step telemetry"
    )
    p_trace.add_argument("place")
    p_trace.add_argument("path")
    p_trace.add_argument("--out", required=True, help="JSONL trace destination")
    p_trace.add_argument("--models", help="load fitted models instead of training")
    p_trace.add_argument("--cache-dir", help="persistent artifact cache directory")
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="summarize a JSONL step trace (usage, latency, duty cycle, "
        "I/O counters); see also `telemetry` and `bench trend`",
    )
    p_report.add_argument("trace")
    p_report.set_defaults(func=cmd_report)

    p_tel = sub.add_parser(
        "telemetry", help="inspect or follow a fleet telemetry event log"
    )
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)
    p_tel_tail = tel_sub.add_parser(
        "tail", help="print recent events, or follow a live run"
    )
    p_tel_tail.add_argument("log", help="telemetry event log (JSONL)")
    p_tel_tail.add_argument(
        "--last",
        type=int,
        default=20,
        help="events to show (default: 20; 0 = all)",
    )
    p_tel_tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new events (Ctrl-C stops)",
    )
    p_tel_tail.add_argument(
        "--poll-s",
        type=float,
        default=0.5,
        help="poll interval while following (default: 0.5)",
    )
    p_tel_tail.set_defaults(func=cmd_telemetry)
    p_tel_sum = tel_sub.add_parser(
        "summary", help="render per-place and per-scheme rollups"
    )
    p_tel_sum.add_argument("log", help="telemetry event log (JSONL)")
    p_tel_sum.set_defaults(func=cmd_telemetry)
    p_tel_exp = tel_sub.add_parser(
        "export", help="export the merged metrics (prometheus/jsonl)"
    )
    p_tel_exp.add_argument("log", help="telemetry event log (JSONL)")
    p_tel_exp.add_argument(
        "--format",
        choices=["prometheus", "jsonl"],
        default="prometheus",
        help="wire format (default: prometheus)",
    )
    p_tel_exp.add_argument("--out", help="write here instead of stdout")
    p_tel_exp.set_defaults(func=cmd_telemetry)

    p_profile = sub.add_parser(
        "profile", help="run an experiment under the sampling profiler"
    )
    p_profile.add_argument(
        "experiment", help="registered experiment name (see `repro run --list`)"
    )
    p_profile.add_argument(
        "--interval-ms",
        type=float,
        default=5.0,
        help="sampling interval in milliseconds (default: 5)",
    )
    p_profile.add_argument(
        "--top", type=int, default=15, help="hot functions to list (default: 15)"
    )
    p_profile.add_argument(
        "--out", help="write collapsed (flamegraph-ready) stacks here"
    )
    p_profile.add_argument(
        "--workers", type=int, default=None, help="fleet worker processes"
    )
    p_profile.add_argument(
        "--n-walks", type=int, default=None, help="walks to pool"
    )
    p_profile.add_argument(
        "--cache-dir", help="persistent artifact cache directory"
    )
    p_profile.set_defaults(func=cmd_profile)

    p_survey = sub.add_parser("survey", help="dump a Wi-Fi fingerprint survey")
    p_survey.add_argument("place")
    p_survey.add_argument("--out", required=True)
    p_survey.set_defaults(func=cmd_survey)

    p_record = sub.add_parser("record", help="record a raw sensor trace")
    p_record.add_argument("place")
    p_record.add_argument("path")
    p_record.add_argument("--out", required=True)
    p_record.set_defaults(func=cmd_record)

    p_chaos = sub.add_parser(
        "chaos", help="run the single-scheme-outage resilience matrix"
    )
    p_chaos.add_argument(
        "--place", default="daily", help="place to walk (default: daily)"
    )
    p_chaos.add_argument(
        "--path", default="path1", help="path within the place (default: path1)"
    )
    p_chaos.add_argument(
        "--kind",
        default="crash",
        choices=["crash", "drop", "hang", "nan", "garbage"],
        help="scheme fault kind to inject (default: crash)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=1, help="fleet worker processes"
    )
    p_chaos.add_argument(
        "--json", action="store_true", help="emit the matrix as JSON"
    )
    p_chaos.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any outage breaks the UniLoc2-beats-survivors shape",
    )
    p_chaos.add_argument("--cache-dir", help="persistent artifact cache directory")
    p_chaos.add_argument(
        "--telemetry",
        metavar="LOG",
        help="stream the fault/quarantine event log here (replayable "
        "chaos record)",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_lint = sub.add_parser(
        "lint", help="run the repo-specific static-analysis rules"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files/directories to analyze (default: src tests)",
    )
    p_lint.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="only run this rule (repeatable, e.g. --rule DET001)",
    )
    p_lint.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (same as --format json)",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format; sarif targets GitHub code scanning "
        "(default: text)",
    )
    p_lint.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        help=f"suppress findings recorded in FILE (default: {DEFAULT_BASELINE})",
    )
    p_lint.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        metavar="FILE",
        help="record current findings as the baseline and exit 0",
    )
    p_lint.add_argument(
        "--cache-path",
        default=DEFAULT_LINT_CACHE,
        help=f"per-file result cache (default: {DEFAULT_LINT_CACHE})",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_lint.set_defaults(func=cmd_lint)

    p_san = sub.add_parser(
        "sanitize",
        help="run an experiment twice and bisect any determinism break",
    )
    p_san.add_argument(
        "experiment", help="registered experiment name (see `repro run --list`)"
    )
    p_san.add_argument(
        "--n-walks", type=int, default=None, help="walks to pool"
    )
    p_san.add_argument(
        "--out-dir",
        default=None,
        help="directory for the two telemetry logs "
        "(default: .repro-cache/sanitize)",
    )
    p_san.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable divergence report",
    )
    p_san.set_defaults(func=cmd_sanitize)

    p_bench = sub.add_parser(
        "bench", help="run or compare the kernel microbenchmarks"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_run = bench_sub.add_parser(
        "run", help="time kernels vs scalar baselines, write BENCH_<date>.json"
    )
    p_bench_run.add_argument(
        "--place", default="office", help="place to bench on (default: office)"
    )
    p_bench_run.add_argument(
        "--repeats", type=int, default=20, help="iterations per bench"
    )
    p_bench_run.add_argument(
        "--out", help="report path (default: BENCH_<date>.json)"
    )
    p_bench_run.add_argument(
        "--no-walk-step",
        action="store_true",
        help="skip the end-to-end walk-step bench (no model training)",
    )
    p_bench_run.add_argument(
        "--cache-dir", help="persistent artifact cache directory"
    )
    p_bench_run.set_defaults(func=cmd_bench)
    p_bench_cmp = bench_sub.add_parser(
        "compare", help="diff two BENCH reports; exit 1 on regression"
    )
    p_bench_cmp.add_argument("baseline", help="baseline BENCH_*.json")
    p_bench_cmp.add_argument("current", help="current BENCH_*.json")
    p_bench_cmp.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional drop that counts as a regression (default: 0.25)",
    )
    p_bench_cmp.add_argument(
        "--metric",
        choices=["speedup", "p50"],
        default="speedup",
        help="speedup ratios (machine-independent) or raw p50 (same host)",
    )
    p_bench_cmp.set_defaults(func=cmd_bench)
    p_bench_trend = bench_sub.add_parser(
        "trend", help="speedup trajectories across a BENCH_*.json history"
    )
    p_bench_trend.add_argument(
        "reports",
        nargs="+",
        help="BENCH_*.json files (non-bench JSON is skipped with a note)",
    )
    p_bench_trend.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional drop below best-ever that flags a regression "
        "(default: 0.25)",
    )
    p_bench_trend.add_argument(
        "--format",
        choices=["markdown", "csv"],
        default="markdown",
        help="report format (default: markdown)",
    )
    p_bench_trend.add_argument("--out", help="write here instead of stdout")
    p_bench_trend.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any benchmark regressed",
    )
    p_bench_trend.set_defaults(func=cmd_bench)

    sub.add_parser("tables", help="print energy/latency tables").set_defaults(
        func=cmd_tables
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
