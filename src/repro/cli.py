"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

``places``
    List the built-in worlds and their paths.
``train [--out models.json]``
    Run the one-time error-model training (§III) and optionally save
    the fitted models.
``run PLACE PATH [--models models.json]``
    Walk a path with UniLoc and print per-system error statistics, the
    scheme-usage bars, and a CDF plot.
``survey PLACE --out prints.json``
    Deploy a place and dump its Wi-Fi fingerprint survey.
``record PLACE PATH --out trace.json``
    Record a raw sensor trace for offline experimentation.
``tables``
    Regenerate the paper's energy and response-time tables.
``trace PLACE PATH --out steps.jsonl``
    Walk a path with full step tracing on and export the JSONL
    decision telemetry stream (see README "Observability").
``report TRACE``
    Aggregate a JSONL step trace into per-scheme usage, availability,
    latency percentiles, and duty-cycle stats.

``run`` also accepts ``--trace PATH`` to export the telemetry stream
while printing its usual evaluation.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _builders():
    from repro.world import (
        build_campus_place,
        build_daily_path_place,
        build_mall_place,
        build_office_place,
        build_open_space_place,
        build_second_office_place,
        build_urban_open_space_place,
    )

    return {
        "daily": build_daily_path_place,
        "campus": build_campus_place,
        "office": build_office_place,
        "office-2": build_second_office_place,
        "open-space": build_open_space_place,
        "urban-open-space": build_urban_open_space_place,
        "mall": build_mall_place,
    }


def cmd_places(_: argparse.Namespace) -> int:
    """List built-in places and their paths."""
    for name, build in _builders().items():
        place = build()
        paths = ", ".join(
            f"{p.name} ({p.length():.0f} m)" for p in place.paths.values()
        )
        print(f"{name:18s} {paths}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train the error models and optionally persist them."""
    from repro.eval import train_error_models

    models = train_error_models(seed=args.seed)
    for name, model_set in models.items():
        for label, model in (("indoor", model_set.indoor), ("outdoor", model_set.outdoor)):
            if model.is_fitted:
                s = model.summary
                betas = ", ".join(f"{b:+.3f}" for b in s.coefficients)
                print(
                    f"{name:9s} {label:8s} beta=[{betas}] "
                    f"sigma_e={s.residual_std:.2f} R2={s.r_squared:.2f} n={s.n_samples}"
                )
    if args.out:
        from repro.persistence import save_error_models

        save_error_models(models, args.out)
        print(f"\nsaved to {args.out}")
    return 0


def _prepare_run(args: argparse.Namespace):
    """Shared setup for the walk-driving commands (``run``/``trace``).

    Returns ``(setup, framework, walk, snaps)`` or an exit code on a
    bad place/path.
    """
    from repro.eval import PlaceSetup, build_framework, train_error_models

    builders = _builders()
    if args.place not in builders:
        print(f"unknown place {args.place!r}; see `repro places`", file=sys.stderr)
        return 2
    if args.models:
        from repro.persistence import load_error_models

        models = load_error_models(args.models)
    else:
        models = train_error_models(seed=args.seed)
    setup = PlaceSetup.create(builders[args.place](), seed=args.seed + 3)
    if args.path not in setup.place.paths:
        print(
            f"unknown path {args.path!r}; this place has: "
            + ", ".join(setup.place.paths),
            file=sys.stderr,
        )
        return 2
    walk, snaps = setup.record_walk(
        args.path, walk_seed=args.seed, trace_seed=args.seed + 1
    )
    framework = build_framework(setup, models, walk.moments[0].position)
    return setup, framework, walk, snaps


def _open_trace(args: argparse.Namespace, out_path: str):
    """Open the JSONL trace sink *before* the expensive setup.

    Model training takes minutes; a typo'd output path should fail in
    milliseconds, not after the walk.  Returns a ``TraceWriter`` or an
    exit code.
    """
    from repro.obs import TraceWriter

    try:
        return TraceWriter(out_path, place=args.place, path_name=args.path)
    except OSError as exc:
        print(f"cannot write trace: {exc}", file=sys.stderr)
        return 2


def _discard_trace(tw, out_path: str) -> None:
    """Remove a trace stub left behind by a failed setup."""
    import os

    tw.close()
    try:
        os.unlink(out_path)
    except OSError:
        pass


def cmd_run(args: argparse.Namespace) -> int:
    """Run UniLoc over one path and print the evaluation."""
    from repro.eval import SCHEME_NAMES, run_walk
    from repro.eval.plots import render_bars, render_cdf

    tw = None
    if args.trace is not None:
        tw = _open_trace(args, args.trace)
        if isinstance(tw, int):
            return tw
    prepared = _prepare_run(args)
    if isinstance(prepared, int):
        if tw is not None:
            _discard_trace(tw, args.trace)
        return prepared
    setup, framework, walk, snaps = prepared
    if tw is not None:
        from repro.obs import Tracer

        framework.tracer = Tracer()
        with tw:
            result = run_walk(framework, setup.place, args.path, walk, snaps, trace=tw)
        print(f"wrote {tw.n_steps} step events to {args.trace}")
    else:
        result = run_walk(framework, setup.place, args.path, walk, snaps)

    print(f"\n{args.place}/{args.path}: {len(result.records)} estimates\n")
    errors_by_system = {}
    for estimator in list(SCHEME_NAMES) + ["optsel", "uniloc1", "uniloc2"]:
        errors = result.errors(estimator)
        if errors:
            errors_by_system[estimator] = errors
            print(
                f"  {estimator:9s} mean {np.mean(errors):6.2f} m   "
                f"p50 {np.percentile(errors, 50):6.2f} m   "
                f"p90 {np.percentile(errors, 90):6.2f} m"
            )
    print("\nUniLoc1 scheme usage:")
    print(render_bars(result.usage("uniloc1")))
    print("\n" + render_cdf(errors_by_system))
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    """Dump a place's Wi-Fi fingerprint survey to JSON."""
    from repro.eval import PlaceSetup
    from repro.persistence import save_fingerprints

    builders = _builders()
    if args.place not in builders:
        print(f"unknown place {args.place!r}", file=sys.stderr)
        return 2
    setup = PlaceSetup.create(builders[args.place](), seed=args.seed + 3)
    save_fingerprints(setup.wifi_db, args.out)
    print(f"saved {len(setup.wifi_db)} fingerprints to {args.out}")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    """Record one walk's raw sensor trace to JSON."""
    from repro.eval import PlaceSetup
    from repro.persistence import save_trace

    builders = _builders()
    if args.place not in builders:
        print(f"unknown place {args.place!r}", file=sys.stderr)
        return 2
    setup = PlaceSetup.create(builders[args.place](), seed=args.seed + 3)
    if args.path not in setup.place.paths:
        print(f"unknown path {args.path!r}", file=sys.stderr)
        return 2
    _, snaps = setup.record_walk(
        args.path, walk_seed=args.seed, trace_seed=args.seed + 1
    )
    save_trace(snaps, args.out)
    print(f"saved {len(snaps)} snapshots to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Walk a path with tracing enabled and export the JSONL telemetry."""
    from repro.eval import run_walk
    from repro.obs import MetricsRegistry, Tracer

    tw = _open_trace(args, args.out)
    if isinstance(tw, int):
        return tw
    prepared = _prepare_run(args)
    if isinstance(prepared, int):
        _discard_trace(tw, args.out)
        return prepared
    setup, framework, walk, snaps = prepared
    framework.tracer = Tracer()
    framework.metrics = MetricsRegistry()
    with tw:
        run_walk(framework, setup.place, args.path, walk, snaps, trace=tw)
    print(f"wrote {tw.n_steps} step events to {args.out}\n")
    print(framework.metrics.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate a JSONL step trace into a summary table."""
    from repro.obs import read_trace, render_report, summarize_trace

    try:
        meta, steps = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(render_report(summarize_trace(meta, steps)))
    return 0


def cmd_tables(_: argparse.Namespace) -> int:
    """Print the modeled Table IV / Table V constants."""
    from repro.energy import response_time, scheme_energy

    print("Energy per system (230 s walk, 460 estimates):")
    for name in ("gps", "wifi", "cellular", "motion", "fusion", "uniloc"):
        report = scheme_energy(name, 230.0, 460, gps_duty=0.0)
        print(f"  {name:9s} {report.power_mw:6.0f} mW  {report.energy_j:7.1f} J")
    bt = response_time()
    print(
        f"\nResponse time: {bt.total_ms:.1f} ms total, "
        f"{bt.transmission_fraction:.0%} transmissions, "
        f"UniLoc adds {bt.uniloc_added_ms:.1f} ms"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="UniLoc reproduction command line"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("places", help="list built-in worlds").set_defaults(func=cmd_places)

    p_train = sub.add_parser("train", help="train the error models")
    p_train.add_argument("--out", help="save fitted models to this JSON file")
    p_train.set_defaults(func=cmd_train)

    p_run = sub.add_parser("run", help="run UniLoc over a path")
    p_run.add_argument("place")
    p_run.add_argument("path")
    p_run.add_argument("--models", help="load fitted models instead of training")
    p_run.add_argument(
        "--trace", help="also export the JSONL step-telemetry stream here"
    )
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="walk a path and export JSONL step telemetry"
    )
    p_trace.add_argument("place")
    p_trace.add_argument("path")
    p_trace.add_argument("--out", required=True, help="JSONL trace destination")
    p_trace.add_argument("--models", help="load fitted models instead of training")
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report", help="summarize a JSONL step trace (usage, latency, duty cycle)"
    )
    p_report.add_argument("trace")
    p_report.set_defaults(func=cmd_report)

    p_survey = sub.add_parser("survey", help="dump a Wi-Fi fingerprint survey")
    p_survey.add_argument("place")
    p_survey.add_argument("--out", required=True)
    p_survey.set_defaults(func=cmd_survey)

    p_record = sub.add_parser("record", help="record a raw sensor trace")
    p_record.add_argument("place")
    p_record.add_argument("path")
    p_record.add_argument("--out", required=True)
    p_record.set_defaults(func=cmd_record)

    sub.add_parser("tables", help="print energy/latency tables").set_defaults(
        func=cmd_tables
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
