"""One function per paper table / figure (the per-experiment index).

Every benchmark in ``benchmarks/`` and several examples drive these
functions; they share cached error models and place setups so a full
bench run trains once and reuses everything.

===========  =====================================================
fig2         :func:`fig2_motivation` — scheme errors along Path 1
table1       :func:`table1_influence_factors`
table2       :func:`table2_error_models`
table3       :func:`table3_prediction_rmse`
fig3/5/6     :func:`daily_path_result` (one UniLoc run serves all)
fig7         :func:`fig7_eight_paths`
fig8a-c      :func:`fig8_environment` ("mall", "open-space", "office")
fig8d        :func:`fig8d_heterogeneity`
table4       :func:`table4_energy`
table5       :func:`table5_response_time`
===========  =====================================================
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.core import ErrorModelSet, RegressionSummary
from repro.energy import (
    EnergyReport,
    ResponseTimeBreakdown,
    energy_table,
    response_time,
)
from repro.eval.metrics import normalized_rmse
from repro.eval.runner import WalkResult, merge_results, run_walk
from repro.eval.setup import (
    SCHEME_NAMES,
    PlaceSetup,
    build_framework,
    train_error_models,
)
from repro.sensors import LG_G3, NEXUS_5X, DeviceProfile, OffsetCalibrator
from repro.sensors.snapshot import SensorSnapshot
from repro.world import (
    EnvironmentType,
    build_campus_place,
    build_daily_path_place,
    build_mall_place,
    build_office_place,
    build_open_space_place,
    build_second_office_place,
    build_urban_open_space_place,
)

#: Master seed for the shared experiment fixtures.
DEFAULT_SEED = 0


@functools.lru_cache(maxsize=4)
def shared_models(seed: int = DEFAULT_SEED) -> dict[str, ErrorModelSet]:
    """Return the error models trained once per the paper's protocol."""
    return train_error_models(seed=seed)


@functools.lru_cache(maxsize=16)
def place_setup(place_name: str, seed: int = DEFAULT_SEED) -> PlaceSetup:
    """Return a cached deployed+surveyed setup for a named built-in place."""
    builders = {
        "daily": build_daily_path_place,
        "campus": build_campus_place,
        "office": build_office_place,
        "office-2": build_second_office_place,
        "open-space": build_open_space_place,
        "urban-open-space": build_urban_open_space_place,
        "mall": build_mall_place,
    }
    if place_name not in builders:
        raise ValueError(f"unknown place {place_name!r}")
    return PlaceSetup.create(builders[place_name](), seed=seed + 3)


def _run(
    setup: PlaceSetup,
    models: dict[str, ErrorModelSet],
    path_name: str,
    walk_seed: int,
    trace_seed: int,
    device: DeviceProfile = NEXUS_5X,
    start_arc: float = 0.0,
    max_length: float | None = None,
    grid_cell_m: float = 2.0,
    snapshots_override: list[SensorSnapshot] | None = None,
    start_noise_m: float = 0.0,
) -> WalkResult:
    """Record one walk and drive it through a fresh UniLoc framework.

    ``start_noise_m`` perturbs the start position given to the PDR /
    fusion schemes: a walk beginning mid-place has no surveyed anchor, so
    dead reckoning starts from an approximate (e.g. Zee-style Wi-Fi
    bootstrap) position rather than the exact truth.
    """
    walk, snaps = setup.record_walk(
        path_name,
        device=device,
        walk_seed=walk_seed,
        trace_seed=trace_seed,
        start_arc=start_arc,
        max_length=max_length,
    )
    if snapshots_override is not None:
        snaps = snapshots_override
    start = walk.moments[0].position
    if start_noise_m > 0.0:
        rng = np.random.default_rng(walk_seed + 777)
        from repro.geometry import Point

        start = Point(
            start.x + float(rng.normal(0.0, start_noise_m)),
            start.y + float(rng.normal(0.0, start_noise_m)),
        )
    framework = build_framework(
        setup,
        models,
        start,
        scheme_seed=walk_seed + 11,
        grid_cell_m=grid_cell_m,
    )
    return run_walk(framework, setup.place, path_name, walk, snaps)


# ---------------------------------------------------------------------------
# Figure 2 — motivation: individual scheme errors along the daily path.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig2Row:
    """One location of the Fig. 2 error-vs-distance series."""

    arc_length: float
    environment: EnvironmentType
    errors: dict[str, float]


def fig2_motivation(seed: int = DEFAULT_SEED) -> list[Fig2Row]:
    """Run the five schemes independently along Path 1 (paper Fig. 2).

    Like the paper's motivation experiment this bypasses UniLoc entirely:
    each scheme reports independently at every location (GPS with no duty
    cycling).
    """
    setup = place_setup("daily", seed)
    walk, snaps = setup.record_walk("path1", walk_seed=seed, trace_seed=seed + 1)
    schemes = setup.make_schemes(walk.moments[0].position, scheme_seed=seed + 2)
    rows = []
    for moment, snapshot in zip(walk.moments, snaps):
        errors = {}
        for name, scheme in schemes.items():
            output = scheme.estimate(snapshot)
            if output is not None:
                errors[name] = output.position.distance_to(moment.position)
        rows.append(
            Fig2Row(
                arc_length=moment.arc_length,
                environment=setup.place.environment_at(moment.position),
                errors=errors,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table I — influence factors per scheme.
# ---------------------------------------------------------------------------


def table1_influence_factors(seed: int = DEFAULT_SEED) -> dict[str, dict[str, tuple[str, ...]]]:
    """Return each scheme's modeled influence factors per context."""
    setup = place_setup("daily", seed)
    extractors = setup.make_extractors()
    return {
        name: {
            "indoor": extractor.feature_names(True),
            "outdoor": extractor.feature_names(False),
        }
        for name, extractor in extractors.items()
    }


# ---------------------------------------------------------------------------
# Table II — error-model coefficients and diagnostics.
# ---------------------------------------------------------------------------


def table2_error_models(
    seed: int = DEFAULT_SEED,
) -> dict[str, dict[str, RegressionSummary]]:
    """Return the Table II regression summaries (per scheme, per context)."""
    models = shared_models(seed)
    table: dict[str, dict[str, RegressionSummary]] = {}
    for name, model_set in models.items():
        table[name] = {}
        for label, model in (("indoor", model_set.indoor), ("outdoor", model_set.outdoor)):
            if model.is_fitted:
                table[name][label] = model.summary
    return table


# ---------------------------------------------------------------------------
# Table III — normalized RMSE of online error prediction.
# ---------------------------------------------------------------------------


def _prediction_rmse(results: list[WalkResult]) -> dict[str, float]:
    """Compute per-scheme normalized RMSE from UniLoc step records."""
    per_scheme: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in SCHEME_NAMES
    }
    for result in results:
        for record in result.records:
            for name in SCHEME_NAMES:
                predicted = record.decision.predicted_errors.get(name)
                actual = record.scheme_errors.get(name)
                if predicted is not None and actual is not None:
                    per_scheme[name][0].append(predicted)
                    per_scheme[name][1].append(actual)
    rmse = {}
    for name, (predicted, actual) in per_scheme.items():
        if len(actual) >= 10 and sum(actual) > 0:
            rmse[name] = normalized_rmse(predicted, actual)
    return rmse


def table3_prediction_rmse(seed: int = DEFAULT_SEED) -> dict[str, dict[str, float]]:
    """Return normalized prediction RMSE for the four Table III conditions.

    Conditions: {same, new} place x {same, different} device.  "Same"
    places are the training office and open space (fresh walks); "new"
    places are the second office and the urban open space.
    """
    models = shared_models(seed)
    conditions = {
        "same_place_same_device": (["office", "open-space"], NEXUS_5X),
        "same_place_diff_device": (["office", "open-space"], LG_G3),
        "new_place_same_device": (["office-2", "urban-open-space"], NEXUS_5X),
        "new_place_diff_device": (["office-2", "urban-open-space"], LG_G3),
    }
    table = {}
    for label, (places, device) in conditions.items():
        results = []
        for idx, place_name in enumerate(places):
            setup = place_setup(place_name, seed)
            results.append(
                _run(
                    setup,
                    models,
                    "survey",
                    walk_seed=seed + 900 + idx,
                    trace_seed=seed + 950 + idx,
                    device=device,
                )
            )
        table[label] = _prediction_rmse(results)
    return table


# ---------------------------------------------------------------------------
# Figures 3, 5, 6 — the daily path under UniLoc.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=4)
def daily_path_result(seed: int = DEFAULT_SEED) -> WalkResult:
    """Run UniLoc over Path 1 once (serves Fig. 3 and Table IV)."""
    setup = place_setup("daily", seed)
    return _run(setup, shared_models(seed), "path1", walk_seed=seed, trace_seed=seed + 1)


@functools.lru_cache(maxsize=4)
def daily_path_pooled(seed: int = DEFAULT_SEED, n_walks: int = 3) -> WalkResult:
    """Pool several Path 1 walks (serves Figs. 5 and 6).

    The paper's Fig. 6 averages repeated walks of the same path; pooling
    several sessions (different subjects' step-model biases) removes the
    single-session luck in the per-scheme means.
    """
    setup = place_setup("daily", seed)
    models = shared_models(seed)
    results = [daily_path_result(seed)]
    for idx in range(1, n_walks):
        results.append(
            _run(
                setup,
                models,
                "path1",
                walk_seed=seed + idx,
                trace_seed=seed + 1 + 7 * idx,
            )
        )
    return merge_results(results)


# ---------------------------------------------------------------------------
# Figure 7 — the eight daily paths.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=2)
def fig7_eight_paths(seed: int = DEFAULT_SEED) -> WalkResult:
    """Run UniLoc over all eight campus paths and pool the records."""
    setup = place_setup("campus", seed)
    models = shared_models(seed)
    results = []
    for idx, path_name in enumerate(sorted(setup.place.paths)):
        results.append(
            _run(
                setup,
                models,
                path_name,
                walk_seed=seed + idx,
                trace_seed=seed + 40 + idx,
                grid_cell_m=4.0,
            )
        )
    return merge_results(results)


# ---------------------------------------------------------------------------
# Figure 8a-c — different environments (new places).
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=8)
def fig8_environment(place_name: str, seed: int = DEFAULT_SEED) -> WalkResult:
    """Run the paper's per-place protocol: 10 trajectories of ~30 m.

    Valid ``place_name`` values: ``"mall"``, ``"urban-open-space"``,
    ``"office"`` (the office is a *trained* place, the other two are new).
    """
    setup = place_setup(place_name, seed)
    models = shared_models(seed)
    path = setup.place.paths["survey"]
    window = min(100.0, path.length() * 0.6)
    usable = max(path.length() - window - 1.0, 1.0)
    results = []
    for idx in range(10):
        start_arc = usable * idx / 10.0
        results.append(
            _run(
                setup,
                models,
                "survey",
                walk_seed=seed + 60 + idx,
                trace_seed=seed + 80 + idx,
                start_arc=start_arc,
                max_length=window,
                start_noise_m=3.0,
            )
        )
    return merge_results(results)


# ---------------------------------------------------------------------------
# Figure 8d — heterogeneous devices with/without offset calibration.
# ---------------------------------------------------------------------------


def _calibrate_scans(
    snapshots: list[SensorSnapshot], calibrator: OffsetCalibrator
) -> list[SensorSnapshot]:
    """Return snapshots with RSSI scans mapped to reference-device units."""
    from dataclasses import replace

    return [
        replace(
            snap,
            wifi_scan=calibrator.correct(snap.wifi_scan),
            cell_scan=calibrator.correct(snap.cell_scan),
        )
        for snap in snapshots
    ]


def _train_calibrator(setup: PlaceSetup, seed: int) -> OffsetCalibrator:
    """Learn the LG G3 -> Nexus 5X RSSI offset from paired readings.

    Both devices record the same short walk (same radio draws), and each
    commonly-audible AP at each step yields one training pair — the
    online-calibration procedure of §III-B.
    """
    walk, snaps_b = setup.record_walk(
        "survey", device=LG_G3, walk_seed=seed + 500, trace_seed=seed + 501,
        max_length=40.0,
    )
    _, snaps_ref = setup.record_walk(
        "survey", device=NEXUS_5X, walk_seed=seed + 500, trace_seed=seed + 501,
        max_length=40.0,
    )
    calibrator = OffsetCalibrator()
    for snap_b, snap_ref in zip(snaps_b, snaps_ref):
        for key in set(snap_b.wifi_scan) & set(snap_ref.wifi_scan):
            calibrator.observe(snap_b.wifi_scan[key], snap_ref.wifi_scan[key])
    return calibrator


@functools.lru_cache(maxsize=2)
def fig8d_heterogeneity(seed: int = DEFAULT_SEED) -> dict[str, WalkResult]:
    """Run the office walk on an LG G3 with and without calibration.

    The fingerprint database and the error models both come from the
    reference device; the test device's offset RSSIs degrade matching
    until the online-learned affine correction restores it.
    """
    setup = place_setup("office", seed)
    models = shared_models(seed)
    walk, snaps = setup.record_walk(
        "survey", device=LG_G3, walk_seed=seed + 700, trace_seed=seed + 701
    )
    calibrator = _train_calibrator(setup, seed)

    results = {}
    for label, snapshots in (
        ("without_calibration", snaps),
        ("with_calibration", _calibrate_scans(snaps, calibrator)),
    ):
        framework = build_framework(
            setup, models, walk.moments[0].position, scheme_seed=seed + 13
        )
        results[label] = run_walk(framework, setup.place, "survey", walk, snapshots)
    return results


# ---------------------------------------------------------------------------
# Table IV — energy; Table V — response time.
# ---------------------------------------------------------------------------


def table4_energy(seed: int = DEFAULT_SEED) -> list[EnergyReport]:
    """Return the Table IV energy accounting over the daily path."""
    return energy_table(daily_path_result(seed))


def table5_response_time() -> ResponseTimeBreakdown:
    """Return the modeled Table V response-time decomposition."""
    return response_time()
