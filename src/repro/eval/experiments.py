"""One implementation per paper table / figure (the per-experiment index).

Every benchmark in ``benchmarks/`` and several examples drive these
functions.  The expensive offline artifacts (surveys, trained error
models) come from the :mod:`repro.fleet` artifact cache, and every
multi-walk figure executes through :func:`repro.fleet.run_walks`, so a
full suite trains once, surveys each place once, and can fan walks out
over worker processes.

===========  =====================================================
fig2         :func:`_impl_fig2_motivation` — scheme errors along Path 1
table1       :func:`_impl_table1_influence_factors`
table2       :func:`_impl_table2_error_models`
table3       :func:`_impl_table3_prediction_rmse`
fig3/5/6     :func:`daily_path_result` (one UniLoc run serves all)
fig7         :func:`_impl_fig7_eight_paths`
fig8a-c      :func:`_impl_fig8_environment` ("mall", "open-space", "office")
fig8d        :func:`_impl_fig8d_heterogeneity`
table4       :func:`_impl_table4_energy`
table5       :func:`_impl_table5_response_time`
===========  =====================================================

The implementations are intentionally private: all dispatch goes
through :mod:`repro.eval.registry` (``run_experiment("fig7",
workers=4)``) or the CLI (``repro run fig7 --workers 4``).  The old
public ``fig*`` / ``table*`` free-function wrappers (deprecated since
the registry landed) have been removed.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core import ErrorModelSet, RegressionSummary
from repro.energy import (
    EnergyReport,
    ResponseTimeBreakdown,
    energy_table,
    response_time,
)
from repro.eval.metrics import normalized_rmse
from repro.eval.runner import WalkResult, merge_results, run_walk
from repro.eval.setup import (
    SCHEME_NAMES,
    PlaceSetup,
    build_framework,
)
from repro.fleet import WalkJob, default_cache, run_walks
from repro.sensors import LG_G3, NEXUS_5X, DeviceProfile, OffsetCalibrator
from repro.sensors.snapshot import SensorSnapshot
from repro.world import EnvironmentType

#: Master seed for the shared experiment fixtures.
DEFAULT_SEED = 0


@functools.lru_cache(maxsize=4)
def shared_models(seed: int = DEFAULT_SEED) -> dict[str, ErrorModelSet]:
    """Return the error models trained once per the paper's protocol.

    Backed by the fleet artifact cache: with ``REPRO_CACHE_DIR`` set the
    training happens at most once per machine, not once per process.
    """
    return default_cache().error_models(seed)


@functools.lru_cache(maxsize=16)
def place_setup(place_name: str, seed: int = DEFAULT_SEED) -> PlaceSetup:
    """Return a cached deployed+surveyed setup for a named built-in place.

    Raises:
        ValueError: on an unknown place name.
    """
    return default_cache().place_setup(place_name, seed + 3)


def _job(
    place_name: str,
    path_name: str,
    seed: int,
    walk_seed: int,
    trace_seed: int,
    **overrides,
) -> WalkJob:
    """Build a walk job using the experiment suite's seed conventions."""
    return WalkJob(
        place_name=place_name,
        path_name=path_name,
        setup_seed=seed + 3,
        models_seed=seed,
        walk_seed=walk_seed,
        trace_seed=trace_seed,
        **overrides,
    )


def _run_jobs(jobs: list[WalkJob], workers: int = 1) -> list[WalkResult]:
    """Execute jobs through the fleet engine against the default cache."""
    return run_walks(jobs, workers=workers, cache=default_cache())


# ---------------------------------------------------------------------------
# Figure 2 — motivation: individual scheme errors along the daily path.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig2Row:
    """One location of the Fig. 2 error-vs-distance series."""

    arc_length: float
    environment: EnvironmentType
    errors: dict[str, float]


def _impl_fig2_motivation(seed: int = DEFAULT_SEED) -> list[Fig2Row]:
    setup = place_setup("daily", seed)
    walk, snaps = setup.record_walk("path1", walk_seed=seed, trace_seed=seed + 1)
    schemes = setup.make_schemes(walk.moments[0].position, scheme_seed=seed + 2)
    rows = []
    for moment, snapshot in zip(walk.moments, snaps):
        errors = {}
        for name, scheme in schemes.items():
            output = scheme.estimate(snapshot)
            if output is not None:
                errors[name] = output.position.distance_to(moment.position)
        rows.append(
            Fig2Row(
                arc_length=moment.arc_length,
                environment=setup.place.environment_at(moment.position),
                errors=errors,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table I — influence factors per scheme.
# ---------------------------------------------------------------------------


def _impl_table1_influence_factors(
    seed: int = DEFAULT_SEED,
) -> dict[str, dict[str, tuple[str, ...]]]:
    setup = place_setup("daily", seed)
    extractors = setup.make_extractors()
    return {
        name: {
            "indoor": extractor.feature_names(True),
            "outdoor": extractor.feature_names(False),
        }
        for name, extractor in extractors.items()
    }


# ---------------------------------------------------------------------------
# Table II — error-model coefficients and diagnostics.
# ---------------------------------------------------------------------------


def _impl_table2_error_models(
    seed: int = DEFAULT_SEED,
) -> dict[str, dict[str, RegressionSummary]]:
    models = shared_models(seed)
    table: dict[str, dict[str, RegressionSummary]] = {}
    for name, model_set in models.items():
        table[name] = {}
        for label, model in (("indoor", model_set.indoor), ("outdoor", model_set.outdoor)):
            if model.is_fitted:
                table[name][label] = model.summary
    return table


# ---------------------------------------------------------------------------
# Table III — normalized RMSE of online error prediction.
# ---------------------------------------------------------------------------


def _prediction_rmse(results: list[WalkResult]) -> dict[str, float]:
    """Compute per-scheme normalized RMSE from UniLoc step records."""
    per_scheme: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in SCHEME_NAMES
    }
    for result in results:
        for record in result.records:
            for name in SCHEME_NAMES:
                predicted = record.decision.predicted_errors.get(name)
                actual = record.scheme_errors.get(name)
                if predicted is not None and actual is not None:
                    per_scheme[name][0].append(predicted)
                    per_scheme[name][1].append(actual)
    rmse = {}
    for name, (predicted, actual) in per_scheme.items():
        if len(actual) >= 10 and sum(actual) > 0:
            rmse[name] = normalized_rmse(predicted, actual)
    return rmse


#: The four Table III conditions: {same, new} place x {same, diff} device.
_TABLE3_CONDITIONS: dict[str, tuple[list[str], DeviceProfile]] = {
    "same_place_same_device": (["office", "open-space"], NEXUS_5X),
    "same_place_diff_device": (["office", "open-space"], LG_G3),
    "new_place_same_device": (["office-2", "urban-open-space"], NEXUS_5X),
    "new_place_diff_device": (["office-2", "urban-open-space"], LG_G3),
}


def _impl_table3_prediction_rmse(
    seed: int = DEFAULT_SEED, workers: int = 1
) -> dict[str, dict[str, float]]:
    jobs = []
    slots: list[str] = []
    for label, (places, device) in _TABLE3_CONDITIONS.items():
        for idx, place_name in enumerate(places):
            jobs.append(
                _job(
                    place_name,
                    "survey",
                    seed,
                    walk_seed=seed + 900 + idx,
                    trace_seed=seed + 950 + idx,
                    device=device,
                )
            )
            slots.append(label)
    results = _run_jobs(jobs, workers=workers)
    table: dict[str, dict[str, float]] = {}
    for label in _TABLE3_CONDITIONS:
        grouped = [r for slot, r in zip(slots, results) if slot == label]
        table[label] = _prediction_rmse(grouped)
    return table


# ---------------------------------------------------------------------------
# Figures 3, 5, 6 — the daily path under UniLoc.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=4)
def daily_path_result(seed: int = DEFAULT_SEED) -> WalkResult:
    """Run UniLoc over Path 1 once (serves Fig. 3 and Table IV)."""
    jobs = [_job("daily", "path1", seed, walk_seed=seed, trace_seed=seed + 1)]
    return _run_jobs(jobs)[0]


@functools.lru_cache(maxsize=4)
def daily_path_pooled(
    seed: int = DEFAULT_SEED, n_walks: int = 3, workers: int = 1
) -> WalkResult:
    """Pool several Path 1 walks (serves Figs. 5 and 6).

    The paper's Fig. 6 averages repeated walks of the same path; pooling
    several sessions (different subjects' step-model biases) removes the
    single-session luck in the per-scheme means.
    """
    jobs = [
        _job(
            "daily",
            "path1",
            seed,
            walk_seed=seed + idx,
            trace_seed=seed + 1 + 7 * idx,
        )
        for idx in range(1, n_walks)
    ]
    results = [daily_path_result(seed)] + _run_jobs(jobs, workers=workers)
    return merge_results(results)


# ---------------------------------------------------------------------------
# Figure 7 — the eight daily paths.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=2)
def _impl_fig7_eight_paths(
    seed: int = DEFAULT_SEED, workers: int = 1
) -> WalkResult:
    setup = place_setup("campus", seed)
    jobs = [
        _job(
            "campus",
            path_name,
            seed,
            walk_seed=seed + idx,
            trace_seed=seed + 40 + idx,
            grid_cell_m=4.0,
        )
        for idx, path_name in enumerate(sorted(setup.place.paths))
    ]
    return merge_results(_run_jobs(jobs, workers=workers))


# ---------------------------------------------------------------------------
# Figure 8a-c — different environments (new places).
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=8)
def _impl_fig8_environment(
    place_name: str, seed: int = DEFAULT_SEED, workers: int = 1
) -> WalkResult:
    setup = place_setup(place_name, seed)
    path = setup.place.paths["survey"]
    window = min(100.0, path.length() * 0.6)
    usable = max(path.length() - window - 1.0, 1.0)
    jobs = [
        _job(
            place_name,
            "survey",
            seed,
            walk_seed=seed + 60 + idx,
            trace_seed=seed + 80 + idx,
            start_arc=usable * idx / 10.0,
            max_length=window,
            start_noise_m=3.0,
        )
        for idx in range(10)
    ]
    return merge_results(_run_jobs(jobs, workers=workers))


# ---------------------------------------------------------------------------
# Figure 8d — heterogeneous devices with/without offset calibration.
# ---------------------------------------------------------------------------


def _calibrate_scans(
    snapshots: list[SensorSnapshot], calibrator: OffsetCalibrator
) -> list[SensorSnapshot]:
    """Return snapshots with RSSI scans mapped to reference-device units."""
    from dataclasses import replace

    return [
        replace(
            snap,
            wifi_scan=calibrator.correct(snap.wifi_scan),
            cell_scan=calibrator.correct(snap.cell_scan),
        )
        for snap in snapshots
    ]


def _train_calibrator(setup: PlaceSetup, seed: int) -> OffsetCalibrator:
    """Learn the LG G3 -> Nexus 5X RSSI offset from paired readings.

    Both devices record the same short walk (same radio draws), and each
    commonly-audible AP at each step yields one training pair — the
    online-calibration procedure of §III-B.
    """
    walk, snaps_b = setup.record_walk(
        "survey", device=LG_G3, walk_seed=seed + 500, trace_seed=seed + 501,
        max_length=40.0,
    )
    _, snaps_ref = setup.record_walk(
        "survey", device=NEXUS_5X, walk_seed=seed + 500, trace_seed=seed + 501,
        max_length=40.0,
    )
    calibrator = OffsetCalibrator()
    for snap_b, snap_ref in zip(snaps_b, snaps_ref):
        for key in set(snap_b.wifi_scan) & set(snap_ref.wifi_scan):
            calibrator.observe(snap_b.wifi_scan[key], snap_ref.wifi_scan[key])
    return calibrator


@functools.lru_cache(maxsize=2)
def _impl_fig8d_heterogeneity(seed: int = DEFAULT_SEED) -> dict[str, WalkResult]:
    setup = place_setup("office", seed)
    models = shared_models(seed)
    walk, snaps = setup.record_walk(
        "survey", device=LG_G3, walk_seed=seed + 700, trace_seed=seed + 701
    )
    calibrator = _train_calibrator(setup, seed)

    results = {}
    for label, snapshots in (
        ("without_calibration", snaps),
        ("with_calibration", _calibrate_scans(snaps, calibrator)),
    ):
        framework = build_framework(
            setup, models, walk.moments[0].position, scheme_seed=seed + 13
        )
        results[label] = run_walk(framework, setup.place, "survey", walk, snapshots)
    return results


# ---------------------------------------------------------------------------
# Table IV — energy; Table V — response time.
# ---------------------------------------------------------------------------


def _impl_table4_energy(seed: int = DEFAULT_SEED) -> list[EnergyReport]:
    return energy_table(daily_path_result(seed))


def _impl_table5_response_time() -> ResponseTimeBreakdown:
    return response_time()


# ---------------------------------------------------------------------------
# Population engine — batched lanes, byte-identical to the serial runs.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=2)
def _impl_population(seed: int = DEFAULT_SEED, n_walks: int = 4) -> WalkResult:
    """Pool office walks executed through :func:`run_population`.

    Not a paper artifact — a determinism canary for the population core:
    the same jobs through ``run_walks`` would produce byte-identical
    records, so the nightly sanitizer double-running this experiment
    certifies the batched pre-pass draws RNGs and emits telemetry in a
    reproducible order.
    """
    from repro.fleet import run_population

    jobs = [
        _job(
            "office",
            "survey",
            seed,
            walk_seed=seed + 100 + idx,
            trace_seed=seed + 200 + idx,
            max_length=25.0,
        )
        for idx in range(n_walks)
    ]
    results = run_population(jobs, cache=default_cache())
    return merge_results(results)
