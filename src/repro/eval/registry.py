"""The experiment registry: every paper figure and table, by stable name.

This is the single dispatch point for reproduction artifacts.  Each
entry maps a stable name (``"fig7"``, ``"table3"``, ...) to an
:class:`Experiment` descriptor carrying the implementation callable, its
default :class:`ExperimentConfig` (seed / walk count / worker count),
and the kind of result it produces, so the CLI (``repro run fig7
--workers 4``), ``tools/generate_experiments.py``, and the examples all
invoke experiments the same way::

    from repro.eval.registry import run_experiment

    result = run_experiment("fig7", workers=4)

Implementations live in :mod:`repro.eval.experiments` and execute
through the :mod:`repro.fleet` engine, so a registry run benefits from
the artifact cache and honors ``workers`` where the experiment fans out
over multiple walks.

This module is intentionally *not* re-exported from ``repro.eval`` —
``experiments`` imports ``repro.fleet`` which imports eval submodules,
and keeping the registry out of the package root keeps that import DAG
acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from repro.eval import experiments as _exp

#: Result kinds a registry entry can declare.
#:
#: ``walk``      one (possibly pooled) :class:`~repro.eval.runner.WalkResult`
#: ``walk_map``  dict of label -> WalkResult (e.g. with/without calibration)
#: ``rows``      list of per-location row dataclasses (Fig. 2)
#: ``table``     nested dict / dataclass table (Tables I-V)
KINDS = ("walk", "walk_map", "rows", "table")


@dataclass(frozen=True)
class ExperimentConfig:
    """Run parameters every experiment understands.

    Attributes:
        seed: master seed; each experiment derives its walk/trace seeds
            from this exactly as the paper protocol describes.
        n_walks: how many walks the experiment pools (only meaningful
            for pooled experiments; informational elsewhere).
        workers: worker processes for the fleet engine fan-out (only
            meaningful for multi-walk experiments).
    """

    seed: int = 0
    n_walks: int = 1
    workers: int = 1


@dataclass(frozen=True)
class Experiment:
    """One registered paper artifact.

    Attributes:
        name: stable registry key (also the CLI argument).
        title: human-readable description shown by ``repro run --list``.
        kind: one of :data:`KINDS`, telling renderers what ``run`` returns.
        run: implementation; takes the resolved config, returns the result.
        config: default parameters (overridable per invocation).
    """

    name: str
    title: str
    kind: str
    run: Callable[[ExperimentConfig], Any]
    config: ExperimentConfig = ExperimentConfig()


def _pooled(cfg: ExperimentConfig) -> Any:
    return _exp.daily_path_pooled(
        cfg.seed, n_walks=cfg.n_walks, workers=cfg.workers
    )


def _chaos(cfg: ExperimentConfig) -> Any:
    # Deferred import: repro.faults.chaos pulls in the fleet layer.
    from repro.faults.chaos import chaos_matrix

    return chaos_matrix(seed=cfg.seed, workers=cfg.workers)


EXPERIMENTS: dict[str, Experiment] = {
    e.name: e
    for e in (
        Experiment(
            name="fig2",
            title="Motivation: per-scheme error along the daily path",
            kind="rows",
            run=lambda cfg: _exp._impl_fig2_motivation(cfg.seed),
        ),
        Experiment(
            name="table1",
            title="Influence factors modeled per scheme and context",
            kind="table",
            run=lambda cfg: _exp._impl_table1_influence_factors(cfg.seed),
        ),
        Experiment(
            name="table2",
            title="Error-model regression coefficients and diagnostics",
            kind="table",
            run=lambda cfg: _exp._impl_table2_error_models(cfg.seed),
        ),
        Experiment(
            name="table3",
            title="Normalized RMSE of online error prediction (4 conditions)",
            kind="table",
            run=lambda cfg: _exp._impl_table3_prediction_rmse(
                cfg.seed, workers=cfg.workers
            ),
            config=ExperimentConfig(n_walks=8),
        ),
        Experiment(
            name="fig3",
            title="UniLoc over the daily path (one walk)",
            kind="walk",
            run=lambda cfg: _exp.daily_path_result(cfg.seed),
        ),
        Experiment(
            name="fig5",
            title="Scheme usage over the pooled daily path",
            kind="walk",
            run=_pooled,
            config=ExperimentConfig(n_walks=3),
        ),
        Experiment(
            name="fig6",
            title="Per-system accuracy over the pooled daily path",
            kind="walk",
            run=_pooled,
            config=ExperimentConfig(n_walks=3),
        ),
        Experiment(
            name="fig7",
            title="All eight campus paths, pooled",
            kind="walk",
            run=lambda cfg: _exp._impl_fig7_eight_paths(
                cfg.seed, workers=cfg.workers
            ),
            config=ExperimentConfig(n_walks=8),
        ),
        Experiment(
            name="fig8a",
            title="Environment study: mall (10 trajectories)",
            kind="walk",
            run=lambda cfg: _exp._impl_fig8_environment(
                "mall", cfg.seed, workers=cfg.workers
            ),
            config=ExperimentConfig(n_walks=10),
        ),
        Experiment(
            name="fig8b",
            title="Environment study: urban open space (10 trajectories)",
            kind="walk",
            run=lambda cfg: _exp._impl_fig8_environment(
                "urban-open-space", cfg.seed, workers=cfg.workers
            ),
            config=ExperimentConfig(n_walks=10),
        ),
        Experiment(
            name="fig8c",
            title="Environment study: office (10 trajectories)",
            kind="walk",
            run=lambda cfg: _exp._impl_fig8_environment(
                "office", cfg.seed, workers=cfg.workers
            ),
            config=ExperimentConfig(n_walks=10),
        ),
        Experiment(
            name="fig8d",
            title="Device heterogeneity: LG G3 with/without calibration",
            kind="walk_map",
            run=lambda cfg: _exp._impl_fig8d_heterogeneity(cfg.seed),
        ),
        Experiment(
            name="table4",
            title="Energy accounting over the daily path",
            kind="table",
            run=lambda cfg: _exp._impl_table4_energy(cfg.seed),
        ),
        Experiment(
            name="table5",
            title="Modeled response-time decomposition",
            kind="table",
            run=lambda cfg: _exp._impl_table5_response_time(),
        ),
        Experiment(
            name="population",
            title="Population engine: batched office lanes (determinism canary)",
            kind="walk",
            run=lambda cfg: _exp._impl_population(cfg.seed, n_walks=cfg.n_walks),
            config=ExperimentConfig(n_walks=4),
        ),
        Experiment(
            name="chaos",
            title="Resilience matrix: UniLoc2 under single-scheme outages",
            kind="table",
            run=_chaos,
            config=ExperimentConfig(n_walks=6),
        ),
    )
}


def experiment_names() -> list[str]:
    """Return every registered experiment name, in registry order."""
    return list(EXPERIMENTS)


def get_experiment(name: str) -> Experiment:
    """Return the descriptor for ``name``.

    Raises:
        ValueError: for an unregistered name (message lists valid ones).
    """
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(
    name: str,
    seed: int | None = None,
    n_walks: int | None = None,
    workers: int | None = None,
) -> Any:
    """Run a registered experiment, overriding any config fields given.

    Raises:
        ValueError: for an unregistered name.
    """
    experiment = get_experiment(name)
    overrides = {
        key: value
        for key, value in (
            ("seed", seed),
            ("n_walks", n_walks),
            ("workers", workers),
        )
        if value is not None
    }
    config = replace(experiment.config, **overrides)
    return experiment.run(config)


# ---------------------------------------------------------------------------
# Rendering — shared by the CLI and tools/generate_experiments.py.
# ---------------------------------------------------------------------------


def _render_walk(result: Any) -> str:
    from repro.eval.plots import render_bars, render_cdf
    from repro.eval.setup import SCHEME_NAMES

    lines = [f"{len(result.records)} estimates"]
    errors_by_system = {}
    for estimator in list(SCHEME_NAMES) + ["optsel", "uniloc1", "uniloc2"]:
        errors = result.errors(estimator)
        if errors:
            errors_by_system[estimator] = errors
            lines.append(
                f"  {estimator:9s} mean {np.mean(errors):6.2f} m   "
                f"p50 {np.percentile(errors, 50):6.2f} m   "
                f"p90 {np.percentile(errors, 90):6.2f} m"
            )
    lines.append("\nUniLoc1 scheme usage:")
    lines.append(render_bars(result.usage("uniloc1")))
    lines.append("\n" + render_cdf(errors_by_system))
    return "\n".join(lines)


def _render_rows(rows: list[Any]) -> str:
    by_scheme: dict[str, list[float]] = {}
    for row in rows:
        for scheme, error in row.errors.items():
            by_scheme.setdefault(scheme, []).append(error)
    lines = [f"{len(rows)} locations"]
    for scheme, errors in sorted(by_scheme.items()):
        lines.append(
            f"  {scheme:9s} mean {np.mean(errors):6.2f} m   "
            f"max {np.max(errors):6.2f} m   n={len(errors)}"
        )
    return "\n".join(lines)


def _render_table(value: Any, indent: str = "") -> str:
    from repro.core import RegressionSummary
    from repro.energy import EnergyReport, ResponseTimeBreakdown

    if isinstance(value, dict):
        lines = []
        for key, sub in value.items():
            rendered = _render_table(sub, indent + "  ")
            if "\n" in rendered or isinstance(sub, dict):
                lines.append(f"{indent}{key}:")
                lines.append(rendered)
            else:
                lines.append(f"{indent}{key:28s} {rendered.strip()}")
        return "\n".join(lines)
    if isinstance(value, list):
        return "\n".join(_render_table(item, indent) for item in value)
    if isinstance(value, RegressionSummary):
        betas = ", ".join(f"{b:+.3f}" for b in value.coefficients)
        return (
            f"beta=[{betas}] sigma_e={value.residual_std:.2f} "
            f"R2={value.r_squared:.2f} n={value.n_samples}"
        )
    if isinstance(value, EnergyReport):
        return (
            f"{indent}{value.system:9s} {value.power_mw:6.0f} mW  "
            f"{value.energy_j:7.1f} J"
        )
    if isinstance(value, ResponseTimeBreakdown):
        return (
            f"{indent}total {value.total_ms:.1f} ms "
            f"({value.transmission_fraction:.0%} transmissions, "
            f"UniLoc adds {value.uniloc_added_ms:.1f} ms)"
        )
    if isinstance(value, float):
        return f"{indent}{value:.3f}"
    if hasattr(value, "describe"):  # OutageRow, WalkFailure, ...
        return f"{indent}{value.describe()}"
    if isinstance(value, tuple):
        return indent + ", ".join(str(v) for v in value)
    return f"{indent}{value}"


def render_result(experiment: Experiment, result: Any) -> str:
    """Render an experiment result as the CLI's plain-text report."""
    if experiment.kind == "walk":
        return _render_walk(result)
    if experiment.kind == "walk_map":
        sections = []
        for label, walk_result in result.items():
            sections.append(f"== {label} ==\n{_render_walk(walk_result)}")
        return "\n\n".join(sections)
    if experiment.kind == "rows":
        return _render_rows(result)
    return _render_table(result)
