"""Text-mode rendering of the paper's figures.

The evaluation figures are line/CDF plots; for a dependency-free
library the benches and the CLI render them as unicode text:

* :func:`render_cdf` — the CDF panels (Figs. 7, 8a-d),
* :func:`render_series` — error vs distance (Figs. 2, 3),
* :func:`render_bars` — usage / average-error bars (Figs. 5, 6).

Renderers are pure functions from data to a string, so they are easily
unit-tested and never touch a display.
"""

from __future__ import annotations

import numpy as np

#: Characters used for series in multi-line plots, in assignment order.
SERIES_MARKS = "ox+*#@%&"


def render_cdf(
    errors_by_system: dict[str, list[float]],
    width: int = 60,
    height: int = 16,
    max_error: float | None = None,
) -> str:
    """Render empirical error CDFs as a text plot.

    Args:
        errors_by_system: system name -> error sample.
        width, height: plot size in characters.
        max_error: x-axis limit; defaults to the pooled 95th percentile.

    Raises:
        ValueError: if no system has data.
    """
    systems = {k: sorted(v) for k, v in errors_by_system.items() if v}
    if not systems:
        raise ValueError("no data to plot")
    pooled = np.concatenate([np.asarray(v) for v in systems.values()])
    limit = max_error if max_error is not None else float(np.percentile(pooled, 95))
    limit = max(limit, 1e-6)

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, values) in enumerate(systems.items()):
        mark = SERIES_MARKS[idx % len(SERIES_MARKS)]
        legend.append(f"{mark} {name}")
        arr = np.asarray(values)
        for col in range(width):
            x = limit * (col + 0.5) / width
            fraction = float(np.searchsorted(arr, x, side="right")) / len(arr)
            row = height - 1 - int(fraction * (height - 1))
            canvas[row][col] = mark
    lines = ["CDF"]
    for row_idx, row in enumerate(canvas):
        fraction = 1.0 - row_idx / (height - 1)
        lines.append(f"{fraction:4.1f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{'error (m)':^{width - 12}}{limit:6.1f}")
    lines.append("      " + "   ".join(legend))
    return "\n".join(lines)


def render_series(
    x: list[float],
    series: dict[str, list[float | None]],
    width: int = 70,
    height: int = 14,
    x_label: str = "distance (m)",
) -> str:
    """Render y-vs-x series (e.g. error along a path) as a text plot.

    ``None`` values mark unavailability (gaps in the line, like GPS
    indoors in the paper's Fig. 2).

    Raises:
        ValueError: on empty input or mismatched lengths.
    """
    if not x or not series:
        raise ValueError("no data to plot")
    for name, values in series.items():
        if len(values) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    finite = [
        v for values in series.values() for v in values if v is not None
    ]
    if not finite:
        raise ValueError("all series are empty")
    y_max = max(max(finite), 1e-6)
    x_min, x_max = min(x), max(x)
    span = max(x_max - x_min, 1e-6)

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, values) in enumerate(series.items()):
        mark = SERIES_MARKS[idx % len(SERIES_MARKS)]
        legend.append(f"{mark} {name}")
        for xi, yi in zip(x, values):
            if yi is None:
                continue
            col = min(width - 1, int((xi - x_min) / span * (width - 1)))
            row = height - 1 - min(height - 1, int(yi / y_max * (height - 1)))
            canvas[row][col] = mark
    lines = [f"error (m), y-max {y_max:.1f}"]
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_min:<8.0f}{x_label:^{width - 16}}{x_max:>8.0f}")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)


def render_bars(
    values: dict[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labeled horizontal bars (usage shares, average errors).

    Raises:
        ValueError: if ``values`` is empty or all non-positive.
    """
    if not values:
        raise ValueError("no data to plot")
    peak = max(values.values())
    if peak <= 0.0:
        raise ValueError("bar values must include a positive entry")
    label_width = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        bar = "#" * max(0, int(round(value / peak * width)))
        lines.append(f"{name:<{label_width}} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)
