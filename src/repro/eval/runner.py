"""Experiment runner: walk a path through UniLoc and score everything.

A :class:`WalkResult` records, for every step of a walk, the ground
truth, each scheme's error, the oracle (OptSel) choice, and UniLoc1 /
UniLoc2's errors and decisions — everything the paper's figures and
tables aggregate.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field

from repro.core import StepDecision, UniLocFramework, select_best
from repro.core.oracle import OracleSelection
from repro.motion import Moment, Walk
from repro.obs.trace_log import TraceWriter
from repro.sensors import SensorSnapshot
from repro.world import EnvironmentType, Place

#: Names under which the ensemble estimators are reported alongside the
#: underlying schemes.
UNILOC1 = "uniloc1"
UNILOC2 = "uniloc2"
OPTSEL = "optsel"


@dataclass(frozen=True)
class StepRecord:
    """Everything measured at one location-estimation step."""

    moment: Moment
    environment: EnvironmentType
    decision: StepDecision
    scheme_errors: dict[str, float]
    uniloc1_error: float | None
    uniloc2_error: float | None
    oracle: OracleSelection | None


@dataclass
class WalkResult:
    """The scored outcome of one walk."""

    place_name: str
    path_name: str
    records: list[StepRecord] = field(default_factory=list)

    def errors(self, estimator: str) -> list[float]:
        """Return the error series of a scheme or ensemble estimator.

        ``estimator`` may be a scheme name, ``"uniloc1"``, ``"uniloc2"``,
        or ``"optsel"``.  Steps where the estimator produced nothing are
        skipped.
        """
        values: list[float] = []
        for record in self.records:
            value = self._error_of(record, estimator)
            if value is not None:
                values.append(value)
        return values

    def errors_in(self, estimator: str, env: EnvironmentType) -> list[float]:
        """Return the estimator's errors restricted to one environment."""
        return [
            value
            for record in self.records
            if record.environment is env
            and (value := self._error_of(record, estimator)) is not None
        ]

    def mean_error(self, estimator: str) -> float:
        """Return the estimator's mean error over its available steps.

        Raises:
            ValueError: if the estimator never produced an output.
        """
        values = self.errors(estimator)
        if not values:
            raise ValueError(f"{estimator!r} produced no estimates on this walk")
        return sum(values) / len(values)

    def usage(self, selector: str = UNILOC1) -> dict[str, float]:
        """Return each scheme's usage share under a selection strategy.

        ``selector`` is ``"uniloc1"`` (the online confidence-based choice)
        or ``"optsel"`` (the oracle).  This reproduces the paper's Fig. 5.

        Raises:
            ValueError: on an unknown selector (even with zero records).
        """
        if selector not in (UNILOC1, OPTSEL):
            raise ValueError(f"unknown selector {selector!r}")
        counts: Counter[str] = Counter()
        for record in self.records:
            if selector == UNILOC1:
                chosen = record.decision.selected
            else:
                chosen = record.oracle.scheme if record.oracle else None
            if chosen is not None:
                counts[chosen] += 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in counts.items()}

    def gps_duty_cycle(self) -> float:
        """Return the fraction of steps with the GPS chip powered."""
        if not self.records:
            return 0.0
        on = sum(1 for r in self.records if r.decision.gps_enabled)
        return on / len(self.records)

    @staticmethod
    def _error_of(record: StepRecord, estimator: str) -> float | None:
        if estimator == UNILOC1:
            return record.uniloc1_error
        if estimator == UNILOC2:
            return record.uniloc2_error
        if estimator == OPTSEL:
            return record.oracle.error if record.oracle else None
        return record.scheme_errors.get(estimator)


def score_step(place: Place, moment: Moment, decision: StepDecision) -> StepRecord:
    """Score one framework decision against the ground-truth moment.

    Shared by :func:`run_walk` and the fleet's population runner
    (:func:`repro.fleet.executor.run_population`), so a record is scored
    identically no matter which entry point produced the decision.
    """
    scheme_errors = {
        name: output.position.distance_to(moment.position)
        for name, output in decision.outputs.items()
        if output is not None
    }
    return StepRecord(
        moment=moment,
        environment=place.environment_at(moment.position),
        decision=decision,
        scheme_errors=scheme_errors,
        uniloc1_error=(
            decision.uniloc1_position.distance_to(moment.position)
            if decision.uniloc1_position is not None
            else None
        ),
        uniloc2_error=(
            decision.uniloc2_position.distance_to(moment.position)
            if decision.uniloc2_position is not None
            else None
        ),
        oracle=select_best(decision.outputs, moment.position),
    )


def run_walk(
    framework: UniLocFramework,
    place: Place,
    path_name: str,
    walk: Walk,
    snapshots: list[SensorSnapshot],
    *deprecated: TraceWriter | None,
    trace: TraceWriter | None = None,
    telemetry: object | None = None,
    fault_plan: object | None = None,
    gps_duty_cycling: bool | None = None,
) -> WalkResult:
    """Drive one recorded walk through UniLoc and score every step.

    Configuration is keyword-only — the same surface as
    :func:`~repro.fleet.executor.run_walks` and
    :func:`~repro.fleet.executor.run_population`:

    * ``trace=``: append every step's decision telemetry plus the
      ground-truth errors to a JSONL stream as the walk runs (see
      :mod:`repro.obs.trace_log`), so a crash mid-walk still leaves a
      replayable prefix on disk.
    * ``telemetry=``: an event sink attached to the framework before any
      fault plan is applied, so degradation and injector events stream.
    * ``fault_plan=``: a :class:`~repro.faults.plan.FaultPlan` applied to
      the framework (scheme wrappers) and the snapshot trace (sensor
      corruption) before the walk starts.
    * ``gps_duty_cycling=``: override the framework's §IV-C GPS power
      policy flag for this walk (None leaves it as built).

    Raises:
        ValueError: if the walk and trace lengths differ.
    """
    if deprecated:
        warnings.warn(
            "positional configuration for run_walk() is deprecated; "
            "pass trace= as a keyword",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(deprecated) > 1 or trace is not None:
            raise TypeError("run_walk() accepts at most one trace writer")
        trace = deprecated[0]
    if gps_duty_cycling is not None:
        framework.gps_duty_cycling = gps_duty_cycling
    if telemetry is not None:
        framework.telemetry = telemetry
    if fault_plan is not None:
        fault_plan.apply(framework)
        snapshots = fault_plan.corrupt(snapshots)
    if len(walk.moments) != len(snapshots):
        raise ValueError("walk and snapshot trace must be the same length")
    framework.reset()
    result = WalkResult(place_name=place.name, path_name=path_name)
    for moment, snapshot in zip(walk.moments, snapshots):
        decision = framework.step(snapshot)
        record = score_step(place, moment, decision)
        result.records.append(record)
        if trace is not None:
            oracle = record.oracle
            trace.write_step(
                decision,
                index=moment.index,
                time_s=moment.time_s,
                environment=record.environment.value,
                scheme_errors=record.scheme_errors,
                uniloc1_error=record.uniloc1_error,
                uniloc2_error=record.uniloc2_error,
                oracle_scheme=oracle.scheme if oracle is not None else None,
                oracle_error=oracle.error if oracle is not None else None,
            )
    return result


def merge_results(results: list[WalkResult]) -> WalkResult:
    """Concatenate several walks' records into one result for pooled CDFs.

    Raises:
        ValueError: if ``results`` is empty.
    """
    if not results:
        raise ValueError("cannot merge zero results")
    merged = WalkResult(
        place_name=results[0].place_name,
        path_name="+".join(r.path_name for r in results),
    )
    for result in results:
        merged.records.extend(result.records)
    return merged
