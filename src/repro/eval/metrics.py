"""Evaluation metrics: error CDFs, percentiles, normalized RMSE."""

from __future__ import annotations

import numpy as np


def percentile(errors: list[float], q: float) -> float:
    """Return the q-th percentile of an error sample (q in [0, 100]).

    Raises:
        ValueError: for an empty sample or q outside [0, 100].
    """
    if not errors:
        raise ValueError("percentile of an empty sample is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(np.asarray(errors, dtype=float), q))


def error_cdf(errors: list[float], grid: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` — the empirical CDF of an error sample.

    Args:
        errors: error values in meters.
        grid: evaluation points; defaults to the sorted sample itself.

    Raises:
        ValueError: for an empty sample.
    """
    if not errors:
        raise ValueError("CDF of an empty sample is undefined")
    values = np.sort(np.asarray(errors, dtype=float))
    if grid is None:
        grid = values
    fractions = np.searchsorted(values, grid, side="right") / len(values)
    return grid, fractions


def normalized_rmse(predicted: list[float], actual: list[float]) -> float:
    """Return the paper's Eq. 7: RMSE of predictions over the mean error.

    ``sqrt(mean((pred - actual)^2)) / mean(actual)`` — the metric of
    Table III for online error-prediction quality.

    Raises:
        ValueError: on length mismatch, empty input, or zero mean error.
    """
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have the same length")
    if not actual:
        raise ValueError("normalized RMSE of an empty sample is undefined")
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    mean_error = float(act.mean())
    if mean_error <= 0.0:
        raise ValueError("mean actual error must be positive")
    rmse = float(np.sqrt(((pred - act) ** 2).mean()))
    return rmse / mean_error


def mean_error(errors: list[float]) -> float:
    """Return the mean of an error sample.

    Raises:
        ValueError: for an empty sample.
    """
    if not errors:
        raise ValueError("mean of an empty sample is undefined")
    return float(np.mean(errors))
