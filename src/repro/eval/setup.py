"""Experiment setup: deploy a place, survey it, build schemes and models.

This module encodes the paper's experimental protocol:

* fingerprints are surveyed every 1-3 m indoors and ~12 m in open spaces
  (§V), on the reference device (Nexus 5X);
* error models are trained **once**, in the office (indoor context) and
  the campus open space (outdoor context), with ~300 locations each
  (§III-B), then reused everywhere — including the "new places" (mall,
  urban open space, second office) that make up 89% of the evaluation;
* for each test place, fresh scheme instances are built over that place's
  own surveys and maps, wrapped with the *shared* error models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import (
    ErrorModelSet,
    ErrorModelTrainer,
    FeatureExtractor,
    FingerprintFeatures,
    FusionFeatures,
    GpsFeatures,
    MotionFeatures,
    SchemeBundle,
    UniLocFramework,
)
from repro.geometry import Point
from repro.motion import DEFAULT_GAIT, GaitProfile, generate_walk
from repro.radio import FingerprintDatabase, RadioEnvironment
from repro.schemes import (
    CellularScheme,
    FusionScheme,
    GpsScheme,
    LocalizationScheme,
    PdrScheme,
    RadarScheme,
)
from repro.sensors import NEXUS_5X, DeviceProfile, Smartphone
from repro.world import (
    NTU_FRAME,
    Place,
    build_office_place,
    build_open_space_place,
)

#: Fingerprint survey spacing, per the paper's §V setup.
INDOOR_FINGERPRINT_SPACING_M = 3.0
OUTDOOR_FINGERPRINT_SPACING_M = 12.0

#: The five aggregated schemes, in the paper's presentation order.
SCHEME_NAMES = ("gps", "wifi", "cellular", "motion", "fusion")


def survey_points(
    place: Place,
    path_name: str,
    indoor_spacing: float = INDOOR_FINGERPRINT_SPACING_M,
    outdoor_spacing: float = OUTDOOR_FINGERPRINT_SPACING_M,
) -> list[Point]:
    """Return fingerprint survey points along a path.

    Walks the path at 1 m resolution and keeps a point whenever it is at
    least the context-appropriate spacing from the last kept point —
    matching how a human surveyor covers dense indoor grids but sparse
    outdoor ones (outdoor regions are often inaccessible, §III-B).
    """
    path = place.paths[path_name]
    points: list[Point] = []
    last: Point | None = None
    for s in np.arange(0.0, path.length() + 1.0, 1.0):
        p = path.polyline.point_at_distance(float(s))
        spacing = indoor_spacing if place.is_indoor_at(p) else outdoor_spacing
        if last is None or p.distance_to(last) >= spacing - 1e-9:
            points.append(p)
            last = p
    return points


@dataclass
class PlaceSetup:
    """A deployed, surveyed place ready to run experiments in."""

    place: Place
    radio: RadioEnvironment
    wifi_db: FingerprintDatabase
    cell_db: FingerprintDatabase
    seed: int

    @classmethod
    def create(cls, place: Place, seed: int = 0) -> "PlaceSetup":
        """Deploy radio infrastructure and survey every path of the place."""
        radio = RadioEnvironment.deploy(place, seed=seed)
        rng = np.random.default_rng(seed + 1000)
        points: list[Point] = []
        for path_name in place.paths:
            points.extend(survey_points(place, path_name))
        return cls(
            place=place,
            radio=radio,
            wifi_db=radio.survey_wifi(points, rng),
            cell_db=radio.survey_cellular(points, rng),
            seed=seed,
        )

    def make_schemes(
        self, start: Point, scheme_seed: int = 0
    ) -> dict[str, LocalizationScheme]:
        """Build fresh instances of the five schemes for one walk."""
        return {
            "gps": GpsScheme(NTU_FRAME),
            "wifi": RadarScheme(self.wifi_db),
            "cellular": CellularScheme(self.cell_db),
            "motion": PdrScheme(self.place, start, seed=scheme_seed),
            "fusion": FusionScheme(
                self.place, start, seed=scheme_seed + 1, database=self.wifi_db
            ),
        }

    def make_extractors(self) -> dict[str, FeatureExtractor]:
        """Build this place's feature extractors for the five schemes."""
        return {
            "gps": GpsFeatures(),
            "wifi": FingerprintFeatures(self.wifi_db),
            "cellular": FingerprintFeatures(self.cell_db, include_source_count=True),
            "motion": MotionFeatures(self.place),
            "fusion": FusionFeatures(self.place, self.wifi_db),
        }

    def record_walk(
        self,
        path_name: str,
        gait: GaitProfile = DEFAULT_GAIT,
        device: DeviceProfile = NEXUS_5X,
        walk_seed: int = 0,
        trace_seed: int = 1,
        start_arc: float = 0.0,
        max_length: float | None = None,
    ):
        """Generate a ground-truth walk and its sensor trace.

        Returns:
            ``(walk, snapshots)``.
        """
        path = self.place.paths[path_name]
        walk = generate_walk(
            path.polyline,
            gait,
            np.random.default_rng(walk_seed),
            start_arc=start_arc,
            max_length=max_length,
        )
        phone = Smartphone(self.radio, device)
        return walk, phone.record_walk(walk, seed=trace_seed)


def train_error_models(
    seed: int = 0,
    n_walks_per_place: int = 6,
    return_trainer: bool = False,
) -> dict[str, ErrorModelSet] | tuple[dict[str, ErrorModelSet], ErrorModelTrainer]:
    """Train the five schemes' error models per the paper's protocol.

    Data is collected in the office (indoor) and the campus open space
    (outdoor).  One walk is recorded per test subject (the paper recruits
    six persons of different ages and sexes); the session diversity is
    what lets the regression see the full spread of step-model biases and
    gyro drifts, so sigma_eps honestly reflects inter-session variation.

    Args:
        seed: master seed for deployment, walks, and traces.
        n_walks_per_place: supervised walks per training place (each with
            a different subject, cycling through the subject pool).
        return_trainer: also return the trainer (for diagnostics like
            Table II summaries).
    """
    from repro.motion import subject_pool

    subjects = subject_pool()
    trainer = ErrorModelTrainer()
    extractors_for_fit: dict[str, FeatureExtractor] | None = None
    for place_idx, build in enumerate((build_office_place, build_open_space_place)):
        setup = PlaceSetup.create(build(), seed=seed + place_idx * 17)
        extractors = setup.make_extractors()
        if extractors_for_fit is None:
            extractors_for_fit = extractors
        for walk_idx in range(n_walks_per_place):
            walk, snaps = setup.record_walk(
                "survey",
                gait=subjects[walk_idx % len(subjects)],
                walk_seed=seed + 100 * place_idx + walk_idx,
                trace_seed=seed + 200 * place_idx + walk_idx,
            )
            start = walk.moments[0].position
            schemes = setup.make_schemes(start, scheme_seed=seed + walk_idx)
            trainer.collect_walk(setup.place, schemes, extractors, walk, snaps)
    assert extractors_for_fit is not None
    models = trainer.fit_all(extractors_for_fit)
    if return_trainer:
        return models, trainer
    return models


def build_framework(
    setup: PlaceSetup,
    models: dict[str, ErrorModelSet],
    start: Point,
    scheme_seed: int = 0,
    gps_duty_cycling: bool = True,
    grid_cell_m: float = 2.0,
) -> UniLocFramework:
    """Assemble a UniLoc framework for one walk in one place."""
    schemes = setup.make_schemes(start, scheme_seed=scheme_seed)
    extractors = setup.make_extractors()
    bundles = {
        name: SchemeBundle(
            scheme=schemes[name],
            error_models=models[name],
            extractor=extractors[name],
        )
        for name in SCHEME_NAMES
    }
    return UniLocFramework(
        place=setup.place,
        bundles=bundles,
        grid_cell_m=grid_cell_m,
        gps_duty_cycling=gps_duty_cycling,
    )
