"""Evaluation harness: setup, runner, metrics."""

from repro.eval.metrics import error_cdf, mean_error, normalized_rmse, percentile
from repro.eval.runner import (
    OPTSEL,
    UNILOC1,
    UNILOC2,
    StepRecord,
    WalkResult,
    merge_results,
    run_walk,
)
from repro.eval.setup import (
    INDOOR_FINGERPRINT_SPACING_M,
    OUTDOOR_FINGERPRINT_SPACING_M,
    SCHEME_NAMES,
    PlaceSetup,
    build_framework,
    survey_points,
    train_error_models,
)

__all__ = [
    "INDOOR_FINGERPRINT_SPACING_M",
    "OPTSEL",
    "OUTDOOR_FINGERPRINT_SPACING_M",
    "SCHEME_NAMES",
    "PlaceSetup",
    "StepRecord",
    "UNILOC1",
    "UNILOC2",
    "WalkResult",
    "build_framework",
    "error_cdf",
    "mean_error",
    "merge_results",
    "normalized_rmse",
    "percentile",
    "run_walk",
    "survey_points",
    "train_error_models",
]
